package lang

import (
	"strconv"
	"strings"

	"sentinel/internal/event"
)

// EventResolver resolves a named event reference in an ON clause to its
// definition (the core catalog implements it). It reports ok=false for
// unknown names.
type EventResolver func(name string) (*event.Expr, bool)

type parser struct {
	src     string
	toks    []Token
	i       int
	resolve EventResolver
	// localEvents holds named events declared earlier in the same
	// compilation unit, so a script can define an event and use it in a
	// later rule before anything is executed.
	localEvents map[string]*event.Expr
}

func newParser(src string, resolve EventResolver) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{src: src, toks: toks, resolve: resolve, localEvents: make(map[string]*event.Expr)}, nil
}

// ParseScript parses a full SentinelQL compilation unit.
func ParseScript(src string, resolve EventResolver) (*Script, error) {
	p, err := newParser(src, resolve)
	if err != nil {
		return nil, err
	}
	s := &Script{}
	for !p.atEOF() {
		p.acceptPunct(";")
		if p.atEOF() {
			break
		}
		switch {
		case p.atKw("class"):
			d, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, d)
		case p.atKw("rule"):
			d, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, d)
		case p.atKw("evolve"):
			pos := p.next().Pos
			if !p.atKw("class") {
				return nil, errf(p.cur().Pos, "expected `class` after evolve")
			}
			cd, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, &EvolveDecl{Pos: pos, Class: cd})
		case p.atKw("event") && p.peekIsNamedEventDecl():
			d, err := p.parseEventDecl()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, d)
		default:
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, st)
		}
	}
	return s, nil
}

// ParseEventExpr parses a standalone event expression ("end A::B(...) and
// begin C::D").
func ParseEventExpr(src string, resolve EventResolver) (*event.Expr, error) {
	p, err := newParser(src, resolve)
	if err != nil {
		return nil, err
	}
	e, err := p.parseEventOr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().Pos, "unexpected %q after event expression", p.cur().Text)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseCondition parses a standalone condition expression.
func ParseCondition(src string) (Expr, error) {
	p, err := newParser(src, nil)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().Pos, "unexpected %q after condition", p.cur().Text)
	}
	return e, nil
}

// ParseActions parses a standalone statement sequence (a rule action body).
func ParseActions(src string) ([]Stmt, error) {
	p, err := newParser(src, nil)
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.atEOF() {
		p.acceptPunct(";")
		if p.atEOF() {
			break
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// ParseRule parses a single rule declaration.
func ParseRule(src string, resolve EventResolver) (*RuleDecl, error) {
	p, err := newParser(src, resolve)
	if err != nil {
		return nil, err
	}
	d, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errf(p.cur().Pos, "unexpected %q after rule", p.cur().Text)
	}
	return d, nil
}

// ---- token plumbing ----

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.toks[p.i].Kind == TokEOF }

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != TokEOF {
		p.i++
	}
	return t
}

func (p *parser) peek(k int) Token {
	if p.i+k >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+k]
}

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) (Token, error) {
	if !p.atPunct(s) {
		return p.cur(), errf(p.cur().Pos, "expected %q, got %q", s, p.cur().Text)
	}
	return p.next(), nil
}

// atKw reports a case-insensitive keyword match on the current identifier.
func (p *parser) atKw(word string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, word)
}

func (p *parser) acceptKw(word string) bool {
	if p.atKw(word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) (Token, error) {
	if !p.atKw(word) {
		return p.cur(), errf(p.cur().Pos, "expected %q, got %q", word, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Pos, "expected identifier, got %q", t.Text)
	}
	return p.next(), nil
}

// sliceFrom returns source text between a start position and the end of the
// previously consumed token.
func (p *parser) sliceFrom(start Pos) string {
	end := p.toks[p.i-1].EndOff
	if end > len(p.src) {
		end = len(p.src)
	}
	if start.Off > end {
		return ""
	}
	return strings.TrimSpace(p.src[start.Off:end])
}

// acceptGoRef consumes a `go:name` registry reference (used for rule
// conditions and actions bound to registered Go functions) and returns it
// in its "go:name" persistent form.
func (p *parser) acceptGoRef() (string, bool) {
	if p.atKw("go") && p.peek(1).Kind == TokPunct && p.peek(1).Text == ":" && p.peek(2).Kind == TokIdent {
		p.next()
		p.next()
		n := p.next()
		return "go:" + n.Text, true
	}
	return "", false
}

// peekIsNamedEventDecl distinguishes `event Name = ...` (a named event
// declaration) from an expression beginning with the `event` primitive
// keyword (`event C::M`).
func (p *parser) peekIsNamedEventDecl() bool {
	return p.peek(1).Kind == TokIdent && p.peek(2).Kind == TokPunct && p.peek(2).Text == "="
}

// ---- event expressions ----

// precedence: or < and < seq < primary
func (p *parser) parseEventOr() (*event.Expr, error) {
	l, err := p.parseEventAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") || p.acceptPunct("||") {
		r, err := p.parseEventAnd()
		if err != nil {
			return nil, err
		}
		l = event.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseEventAnd() (*event.Expr, error) {
	l, err := p.parseEventSeq()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") || p.acceptPunct("&&") {
		r, err := p.parseEventSeq()
		if err != nil {
			return nil, err
		}
		l = event.And(l, r)
	}
	return l, nil
}

func (p *parser) parseEventSeq() (*event.Expr, error) {
	l, err := p.parseEventPrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("seq") || p.acceptKw("then_on") {
		r, err := p.parseEventPrimary()
		if err != nil {
			return nil, err
		}
		l = event.Seq(l, r)
	}
	return l, nil
}

func (p *parser) parseEventPrimary() (*event.Expr, error) {
	t := p.cur()
	switch {
	case p.acceptPunct("("):
		e, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.atKw("not"):
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		b, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("["); err != nil {
			return nil, err
		}
		a, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(","); err != nil {
			return nil, err
		}
		c, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return event.Not(a, b, c), nil

	case p.atKw("any"):
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		mTok := p.next()
		if mTok.Kind != TokInt {
			return nil, errf(mTok.Pos, "any(...) needs an integer count, got %q", mTok.Text)
		}
		m, _ := strconv.Atoi(mTok.Text)
		var kids []*event.Expr
		for p.acceptPunct(";") {
			e, err := p.parseEventOr()
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return event.Any(m, kids...), nil

	case p.atKw("aperiodic_star"):
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		a, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		b, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		c, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return event.AperiodicStar(a, b, c), nil

	case p.atKw("aperiodic"):
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		a, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		b, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		c, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return event.Aperiodic(a, b, c), nil

	case p.atKw("periodic"):
		p.next()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		a, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		perTok := p.next()
		if perTok.Kind != TokInt {
			return nil, errf(perTok.Pos, "periodic(...) needs an integer period, got %q", perTok.Text)
		}
		per, _ := strconv.ParseUint(perTok.Text, 10, 64)
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		c, err := p.parseEventOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return event.Periodic(a, per, c), nil

	case p.atKw("begin") || p.atKw("end") || p.atKw("event"):
		return p.parsePrimitiveEvent()

	case t.Kind == TokIdent:
		// A named event reference: same compilation unit first, then the
		// catalog.
		p.next()
		if e, ok := p.localEvents[t.Text]; ok {
			return e, nil
		}
		if p.resolve == nil {
			return nil, errf(t.Pos, "named event %q used but no event catalog available", t.Text)
		}
		e, ok := p.resolve(t.Text)
		if !ok {
			return nil, errf(t.Pos, "unknown event %q", t.Text)
		}
		return e, nil

	default:
		return nil, errf(t.Pos, "expected event expression, got %q", t.Text)
	}
}

// parsePrimitiveEvent parses `begin Class::Method(...)`, `end C::M`, or
// `event C::Name` (explicit application events). A parenthesized formal
// parameter list is accepted and ignored — matching is by class, method and
// moment; parameter names travel with the occurrence.
func (p *parser) parsePrimitiveEvent() (*event.Expr, error) {
	var when event.Moment
	switch {
	case p.acceptKw("begin"):
		when = event.Begin
	case p.acceptKw("end"):
		when = event.End
	case p.acceptKw("event"):
		when = event.Explicit
	default:
		return nil, errf(p.cur().Pos, "expected begin/end/event")
	}
	cls, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("::"); err != nil {
		return nil, err
	}
	meth, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("(") {
		depth := 1
		for depth > 0 {
			if p.atEOF() {
				return nil, errf(p.cur().Pos, "unterminated parameter list in event signature")
			}
			switch {
			case p.atPunct("("):
				depth++
			case p.atPunct(")"):
				depth--
			}
			p.next()
		}
	}
	return event.Primitive(when, cls.Text, meth.Text), nil
}

// ---- rule declarations ----

func (p *parser) parseRule() (*RuleDecl, error) {
	start, err := p.expectKw("rule")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &RuleDecl{Pos: start.Pos, Name: name.Text, Coupling: "immediate"}

	if p.acceptKw("for") {
		cls, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d.ForClass = cls.Text
	}

	if !p.acceptKw("on") && !p.acceptKw("when") {
		return nil, errf(p.cur().Pos, "expected ON (or WHEN) in rule %s", d.Name)
	}
	evStart := p.cur().Pos
	ev, err := p.parseEventOr()
	if err != nil {
		return nil, err
	}
	d.Event = ev
	d.EventName = p.sliceFrom(evStart)

	if p.acceptKw("if") {
		if name, ok := p.acceptGoRef(); ok {
			d.CondSrc = name
		} else {
			condStart := p.cur().Pos
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Cond = cond
			d.CondSrc = p.sliceFrom(condStart)
		}
	}

	if _, err := p.expectKw("then"); err != nil {
		return nil, err
	}
	if name, ok := p.acceptGoRef(); ok {
		d.ActionSrc = name
	} else if p.atPunct("{") {
		openTok := p.cur()
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		closeTok := p.toks[p.i-1] // the consumed "}"
		d.Action = body
		d.ActionSrc = strings.TrimSpace(p.src[openTok.EndOff:closeTok.Pos.Off])
	} else {
		actStart := p.cur().Pos
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		d.Action = []Stmt{st}
		d.ActionSrc = p.sliceFrom(actStart)
	}

	for {
		switch {
		case p.acceptKw("coupling"):
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Coupling = strings.ToLower(t.Text)
		case p.acceptKw("priority"):
			neg := p.acceptPunct("-")
			t := p.next()
			if t.Kind != TokInt {
				return nil, errf(t.Pos, "priority needs an integer, got %q", t.Text)
			}
			n, _ := strconv.Atoi(t.Text)
			if neg {
				n = -n
			}
			d.Priority = n
		case p.acceptKw("context"):
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Context = strings.ToLower(t.Text)
		case p.acceptKw("scope"):
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			switch strings.ToLower(t.Text) {
			case "transaction", "tx":
				d.TxScoped = true
			case "global":
				d.TxScoped = false
			default:
				return nil, errf(t.Pos, "scope must be transaction or global, got %q", t.Text)
			}
		default:
			return d, nil
		}
	}
}

func (p *parser) parseEventDecl() (*EventDecl, error) {
	start, err := p.expectKw("event")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("="); err != nil {
		return nil, err
	}
	exprStart := p.cur().Pos
	e, err := p.parseEventOr()
	if err != nil {
		return nil, err
	}
	if err := e.Validate(); err != nil {
		return nil, errf(start.Pos, "event %s: %v", name.Text, err)
	}
	p.localEvents[name.Text] = e
	return &EventDecl{Pos: start.Pos, Name: name.Text, Expr: e, Source: p.sliceFrom(exprStart)}, nil
}
