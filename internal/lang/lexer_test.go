package lang

import (
	"strconv"
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := kinds(t, `rule R on end Emp::Set(x float) if x >= 1.5 then abort "no"`)
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"rule", "R", "on", "end", "Emp", "::", "Set", "(", "x", "float", ")",
		"if", "x", ">=", "1.5", "then", "abort", "no"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := kinds(t, "1 2.5 1e3 10E-2 7")
	wantKinds := []TokKind{TokInt, TokFloat, TokFloat, TokFloat, TokInt, TokEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q): kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks := kinds(t, `"a\nb" 'c"d' "tab\t\\"`)
	if toks[0].Text != "a\nb" || toks[1].Text != `c"d` || toks[2].Text != "tab\t\\" {
		t.Fatalf("strings = %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
	for _, bad := range []string{`"unterminated`, `"bad\qescape"`, "\"newline\n\""} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q): expected error", bad)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `a // line comment
	b # hash comment
	/* block
	comment */ c`
	toks := kinds(t, src)
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	if strings.Join(texts, "") != "abc" {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestLexPositions(t *testing.T) {
	toks := kinds(t, "a\n  bb")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
	if toks[1].EndOff != 6 {
		t.Errorf("bb EndOff = %d", toks[1].EndOff)
	}
}

func TestLexUnknownChar(t *testing.T) {
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("unknown character accepted")
	}
}

func TestLexMultiBytePunct(t *testing.T) {
	toks := kinds(t, ":= :: <= == !=")
	for i, want := range []string{":=", "::", "<=", "==", "!="} {
		if toks[i].Text != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, want)
		}
	}
}

func TestLexExtendedEscapes(t *testing.T) {
	toks := kinds(t, `"\x41é\r\a\b\f\v"`)
	want := "Aé\r\a\b\f\v"
	if toks[0].Text != want {
		t.Fatalf("escapes = %q, want %q", toks[0].Text, want)
	}
	for _, bad := range []string{`"\x4"`, `"\xZZ"`, `"\u12"`, `"\u12GZ"`} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q): expected error", bad)
		}
	}
}

// TestStringLiteralRoundtripProperty: any Go string survives
// strconv.Quote → lex (the dump/restore contract for string attributes).
func TestStringLiteralRoundtripProperty(t *testing.T) {
	cases := []string{
		"", "plain", "with \"quotes\"", "tabs\tand\nnewlines",
		"control \x01\x02\x7f", "unicode héllo 世界", "backslash \\ mix \x00",
	}
	for _, s := range cases {
		src := strconv.Quote(s)
		toks, err := lex(src)
		if err != nil {
			t.Errorf("lex(%s): %v", src, err)
			continue
		}
		if toks[0].Kind != TokString || toks[0].Text != s {
			t.Errorf("roundtrip %q -> %q", s, toks[0].Text)
		}
	}
}
