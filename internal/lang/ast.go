package lang

import (
	"sentinel/internal/event"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// ---- Expressions ----

// Expr is an expression AST node.
type Expr interface{ exprNode() }

// Lit is a literal value.
type Lit struct {
	Pos Pos
	Val value.Value
}

// Ident references a name, resolved at evaluation time against (in order)
// locals, event parameters, attributes of self, and database name bindings.
type Ident struct {
	Pos  Pos
	Name string
}

// SelfExpr is the `self` keyword.
type SelfExpr struct{ Pos Pos }

// AttrAccess is `recv.Name` (without a call).
type AttrAccess struct {
	Pos  Pos
	Recv Expr
	Name string
}

// Call is `recv.Name(args)` or `recv!Name(args)` — a message send. A nil
// Recv means a send to self.
type Call struct {
	Pos  Pos
	Recv Expr
	Name string
	Args []Expr
}

// NewExpr is `new Class(attr: expr, ...)`.
type NewExpr struct {
	Pos   Pos
	Class string
	Inits []FieldInit
}

// ListLit is `[e1, e2, ...]`.
type ListLit struct {
	Pos   Pos
	Elems []Expr
}

// Index is `list[i]`.
type Index struct {
	Pos  Pos
	Recv Expr
	I    Expr
}

// FieldInit is one `name: expr` initializer.
type FieldInit struct {
	Name string
	Expr Expr
}

// Unary is `-x` or `!x` / `not x`.
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is a binary operation: arithmetic (+ - * / %), comparison
// (< <= > >= == !=), or logical (&& ||, which short-circuit).
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

func (*Lit) exprNode()        {}
func (*Ident) exprNode()      {}
func (*SelfExpr) exprNode()   {}
func (*AttrAccess) exprNode() {}
func (*Call) exprNode()       {}
func (*NewExpr) exprNode()    {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*ListLit) exprNode()    {}
func (*Index) exprNode()      {}

// ---- Statements ----

// Stmt is a statement AST node.
type Stmt interface{ stmtNode() }

// Assign is `target := expr`; Target is an *Ident (local or self attribute)
// or an *AttrAccess.
type Assign struct {
	Pos    Pos
	Target Expr
	Value  Expr
}

// Let declares a local: `let x := expr`.
type Let struct {
	Pos  Pos
	Name string
	Expr Expr
}

// ExprStmt evaluates an expression for its effect (usually a Call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// AbortStmt aborts the enclosing transaction: `abort "reason"`.
type AbortStmt struct {
	Pos    Pos
	Reason string
}

// RaiseStmt raises an explicit application event from a method body:
// `raise LowStock(self.qty)`.
type RaiseStmt struct {
	Pos  Pos
	Name string
	Args []Expr
}

// ReturnStmt returns from a method: `return expr` / `return`.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

// PrintStmt writes values to the environment's output: `print(a, b)`.
type PrintStmt struct {
	Pos  Pos
	Args []Expr
}

// IfStmt is `if cond { ... } else { ... }`.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is `while cond { ... }`.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// ForStmt is `for x in expr { ... }`; expr must evaluate to a list.
type ForStmt struct {
	Pos  Pos
	Var  string
	Seq  Expr
	Body []Stmt
}

// BindStmt binds a database name: `bind IBM stockExpr`.
type BindStmt struct {
	Pos  Pos
	Name string
	Expr Expr
}

// SubscribeStmt is `subscribe RuleName to expr` (or unsubscribe).
type SubscribeStmt struct {
	Pos         Pos
	Rule        string
	Target      Expr
	Unsubscribe bool
}

// RuleCtlStmt is `enable RuleName` / `disable RuleName`.
type RuleCtlStmt struct {
	Pos     Pos
	Rule    string
	Disable bool
}

// IndexStmt is `index Class.attr` / `unindex Class.attr`: create or drop a
// secondary equality index.
type IndexStmt struct {
	Pos   Pos
	Class string
	Attr  string
	Drop  bool
}

func (*Assign) stmtNode()        {}
func (*Let) stmtNode()           {}
func (*ExprStmt) stmtNode()      {}
func (*AbortStmt) stmtNode()     {}
func (*RaiseStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()    {}
func (*PrintStmt) stmtNode()     {}
func (*IfStmt) stmtNode()        {}
func (*WhileStmt) stmtNode()     {}
func (*ForStmt) stmtNode()       {}
func (*BindStmt) stmtNode()      {}
func (*SubscribeStmt) stmtNode() {}
func (*RuleCtlStmt) stmtNode()   {}
func (*IndexStmt) stmtNode()     {}

// ---- Declarations ----

// ClassDecl is a SentinelQL class definition.
type ClassDecl struct {
	Pos        Pos
	Name       string
	Bases      []string
	Reactive   bool
	Notifiable bool
	Persistent bool
	Abstract   bool
	Attrs      []AttrDecl
	Methods    []MethodDecl
	Rules      []RuleDecl
	// Source is the original text of the declaration (for the catalog).
	Source string
}

// AttrDecl is one attribute declaration.
type AttrDecl struct {
	Pos        Pos
	Name       string
	Type       *value.Type
	Visibility schema.Visibility
	Default    value.Value
}

// MethodDecl is one method declaration with an interpreted body.
type MethodDecl struct {
	Pos        Pos
	Name       string
	Params     []schema.Param
	Returns    *value.Type
	Visibility schema.Visibility
	EventGen   schema.EventGen
	Body       []Stmt
}

// RuleDecl is a rule declaration. A rule is class-level when nested in a
// class definition or declared with an explicit `for ClassName` clause;
// otherwise it is instance-level and must be subscribed to the objects it
// monitors.
type RuleDecl struct {
	Pos       Pos
	Name      string
	ForClass  string // `rule X for Employee on ...` — class-level scope
	Event     *event.Expr
	EventName string // when the ON clause references a named event instead
	Cond      Expr   // nil means always true
	Action    []Stmt
	Coupling  string
	Priority  int
	Context   string
	// TxScoped comes from `scope transaction`; detection state resets at
	// transaction end.
	TxScoped bool
	// CondSrc and ActionSrc are the original source fragments (catalog
	// persistence).
	CondSrc, ActionSrc string
}

// EvolveDecl is `evolve class X { ... }`: replace a class definition and
// migrate its instances.
type EvolveDecl struct {
	Pos   Pos
	Class *ClassDecl
}

// EventDecl names an event definition: `event Fired = end Emp::Fire() or ...`.
type EventDecl struct {
	Pos  Pos
	Name string
	Expr *event.Expr
	// Source of the expression (catalog persistence).
	Source string
}

// Script is a parsed SentinelQL compilation unit: an ordered mix of
// declarations and statements.
type Script struct {
	Items []any // *ClassDecl | *RuleDecl | *EventDecl | Stmt
}
