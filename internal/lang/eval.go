package lang

import (
	"fmt"
	"strings"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// Env is the database environment SentinelQL code evaluates against. The
// core runtime implements it once per execution frame (method body, rule
// condition, rule action, shell statement); visibility semantics are the
// frame's concern — method bodies see their class's private members, rule
// bodies run with rule (system) visibility, shell statements see only
// public members.
type Env interface {
	// GetAttr reads an attribute of an object.
	GetAttr(obj oid.OID, attr string) (value.Value, error)
	// SetAttr writes an attribute of an object.
	SetAttr(obj oid.OID, attr string, v value.Value) error
	// GetSelfAttr reads an attribute of the frame's self; ok=false when
	// self has no such attribute (so identifier resolution can fall
	// through to name bindings).
	GetSelfAttr(attr string) (v value.Value, ok bool, err error)
	// Send delivers a message.
	Send(obj oid.OID, method string, args ...value.Value) (value.Value, error)
	// NewObject instantiates a class.
	NewObject(class string, inits map[string]value.Value) (oid.OID, error)
	// LookupName resolves a database name binding.
	LookupName(name string) (oid.OID, bool)
	// BindName creates/overwrites a database name binding.
	BindName(name string, obj oid.OID) error
	// Subscribe attaches the named rule to a reactive object.
	Subscribe(ruleName string, target oid.OID) error
	// Unsubscribe detaches it.
	Unsubscribe(ruleName string, target oid.OID) error
	// SetRuleEnabled enables/disables a rule by name.
	SetRuleEnabled(ruleName string, enabled bool) error
	// Abort constructs the error that aborts the enclosing transaction.
	Abort(reason string) error
	// RaiseEvent signals an explicit application event (valid in method
	// bodies).
	RaiseEvent(name string, args []value.Value) error
	// Instances lists all live instances of the named class (and its
	// subclasses); backs the instances(...) builtin.
	Instances(class string) ([]oid.OID, error)
	// LookupByAttr finds instances of class whose attribute equals v
	// (index-accelerated when possible); backs the lookup(...) builtin.
	LookupByAttr(class, attr string, v value.Value) ([]oid.OID, error)
	// CreateIndex / DropIndex manage secondary equality indexes (the
	// `index Class.attr` / `unindex Class.attr` statements).
	CreateIndex(class, attr string) error
	DropIndex(class, attr string) error
	// Output receives print() text.
	Output(s string)
}

// Scope is a lexical scope chain for locals and event parameters.
type Scope struct {
	vars   map[string]value.Value
	parent *Scope
}

// NewScope returns a scope with the given parent (nil for the root).
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: make(map[string]value.Value), parent: parent}
}

// Define creates (or overwrites) a binding in this scope.
func (s *Scope) Define(name string, v value.Value) { s.vars[name] = v }

// Lookup resolves a name through the chain.
func (s *Scope) Lookup(name string) (value.Value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return value.Nil, false
}

// assign overwrites the nearest existing binding; ok=false if none exists.
func (s *Scope) assign(name string, v value.Value) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			sc.vars[name] = v
			return true
		}
	}
	return false
}

// returnSignal unwinds a method body on `return`.
type returnSignal struct{ v value.Value }

func (returnSignal) Error() string { return "return outside of method body" }

// Interp evaluates SentinelQL ASTs against an Env.
type Interp struct {
	Env   Env
	Self  oid.OID // oid.Nil outside method/rule frames
	Scope *Scope
}

// NewInterp returns an interpreter frame.
func NewInterp(env Env, self oid.OID, scope *Scope) *Interp {
	if scope == nil {
		scope = NewScope(nil)
	}
	return &Interp{Env: env, Self: self, Scope: scope}
}

// EvalCondition evaluates a condition expression to a boolean (Truthy).
func (in *Interp) EvalCondition(e Expr) (bool, error) {
	v, err := in.Eval(e)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

// ExecBody runs a method body and returns the value of its `return`
// statement (value.Nil if the body falls off the end).
func (in *Interp) ExecBody(stmts []Stmt) (value.Value, error) {
	err := in.ExecStmts(stmts)
	if err != nil {
		if rs, ok := err.(returnSignal); ok {
			return rs.v, nil
		}
		return value.Nil, err
	}
	return value.Nil, nil
}

// ExecStmts runs a statement sequence (a rule action, shell input).
// `return` inside surfaces as an error; use ExecBody for method bodies.
func (in *Interp) ExecStmts(stmts []Stmt) error {
	for _, st := range stmts {
		if err := in.execStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(st Stmt) error {
	switch s := st.(type) {
	case *Let:
		v, err := in.Eval(s.Expr)
		if err != nil {
			return err
		}
		in.Scope.Define(s.Name, v)
		return nil

	case *Assign:
		v, err := in.Eval(s.Value)
		if err != nil {
			return err
		}
		switch tgt := s.Target.(type) {
		case *Ident:
			if in.Scope.assign(tgt.Name, v) {
				return nil
			}
			// Fall through to a self attribute.
			if !in.Self.IsNil() {
				if _, ok, _ := in.Env.GetSelfAttr(tgt.Name); ok {
					return in.Env.SetAttr(in.Self, tgt.Name, v)
				}
			}
			return errf(tgt.Pos, "cannot assign to unknown name %q", tgt.Name)
		case *AttrAccess:
			recv, err := in.evalRef(tgt.Recv)
			if err != nil {
				return err
			}
			return in.Env.SetAttr(recv, tgt.Name, v)
		default:
			return errf(s.Pos, "invalid assignment target")
		}

	case *ExprStmt:
		_, err := in.Eval(s.X)
		return err

	case *AbortStmt:
		return in.Env.Abort(s.Reason)

	case *RaiseStmt:
		args := make([]value.Value, len(s.Args))
		for i, a := range s.Args {
			v, err := in.Eval(a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		return in.Env.RaiseEvent(s.Name, args)

	case *ReturnStmt:
		v := value.Nil
		if s.X != nil {
			var err error
			v, err = in.Eval(s.X)
			if err != nil {
				return err
			}
		}
		return returnSignal{v: v}

	case *PrintStmt:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			v, err := in.Eval(a)
			if err != nil {
				return err
			}
			parts[i] = Render(v)
		}
		in.Env.Output(strings.Join(parts, " "))
		return nil

	case *IfStmt:
		ok, err := in.EvalCondition(s.Cond)
		if err != nil {
			return err
		}
		child := &Interp{Env: in.Env, Self: in.Self, Scope: NewScope(in.Scope)}
		if ok {
			return child.ExecStmts(s.Then)
		}
		return child.ExecStmts(s.Else)

	case *WhileStmt:
		for i := 0; ; i++ {
			if i >= 1_000_000 {
				return errf(s.Pos, "while loop exceeded 1e6 iterations")
			}
			ok, err := in.EvalCondition(s.Cond)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			child := &Interp{Env: in.Env, Self: in.Self, Scope: NewScope(in.Scope)}
			if err := child.ExecStmts(s.Body); err != nil {
				return err
			}
		}

	case *ForStmt:
		seqV, err := in.Eval(s.Seq)
		if err != nil {
			return err
		}
		l, ok := seqV.AsList()
		if !ok {
			return errf(s.Pos, "for .. in expects a list, got %s", seqV.Kind())
		}
		for _, e := range l {
			child := &Interp{Env: in.Env, Self: in.Self, Scope: NewScope(in.Scope)}
			child.Scope.Define(s.Var, e)
			if err := child.ExecStmts(s.Body); err != nil {
				return err
			}
		}
		return nil

	case *BindStmt:
		ref, err := in.evalRef(s.Expr)
		if err != nil {
			return err
		}
		return in.Env.BindName(s.Name, ref)

	case *SubscribeStmt:
		ref, err := in.evalRef(s.Target)
		if err != nil {
			return err
		}
		if s.Unsubscribe {
			return in.Env.Unsubscribe(s.Rule, ref)
		}
		return in.Env.Subscribe(s.Rule, ref)

	case *RuleCtlStmt:
		return in.Env.SetRuleEnabled(s.Rule, !s.Disable)

	case *IndexStmt:
		if s.Drop {
			return in.Env.DropIndex(s.Class, s.Attr)
		}
		return in.Env.CreateIndex(s.Class, s.Attr)

	default:
		return fmt.Errorf("sentinelql: unknown statement %T", st)
	}
}

// Eval evaluates an expression.
func (in *Interp) Eval(e Expr) (value.Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil

	case *SelfExpr:
		if in.Self.IsNil() {
			return value.Nil, errf(x.Pos, "self used outside an object context")
		}
		return value.Ref(in.Self), nil

	case *Ident:
		if v, ok := in.Scope.Lookup(x.Name); ok {
			return v, nil
		}
		if !in.Self.IsNil() {
			if v, ok, err := in.Env.GetSelfAttr(x.Name); ok || err != nil {
				return v, err
			}
		}
		if ref, ok := in.Env.LookupName(x.Name); ok {
			return value.Ref(ref), nil
		}
		return value.Nil, errf(x.Pos, "unknown name %q", x.Name)

	case *AttrAccess:
		recv, err := in.evalRef(x.Recv)
		if err != nil {
			return value.Nil, err
		}
		return in.Env.GetAttr(recv, x.Name)

	case *Call:
		// Bare calls dispatch to builtins first; otherwise they are sends
		// to self.
		if x.Recv == nil && IsBuiltin(x.Name) {
			args := make([]value.Value, len(x.Args))
			for i, a := range x.Args {
				v, err := in.Eval(a)
				if err != nil {
					return value.Nil, err
				}
				args[i] = v
			}
			return in.callBuiltin(x.Pos, x.Name, args)
		}
		var recv oid.OID
		if x.Recv == nil {
			if in.Self.IsNil() {
				return value.Nil, errf(x.Pos, "bare call %q outside an object context", x.Name)
			}
			recv = in.Self
		} else {
			var err error
			recv, err = in.evalRef(x.Recv)
			if err != nil {
				return value.Nil, err
			}
		}
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.Eval(a)
			if err != nil {
				return value.Nil, err
			}
			args[i] = v
		}
		return in.Env.Send(recv, x.Name, args...)

	case *NewExpr:
		inits := make(map[string]value.Value, len(x.Inits))
		for _, fi := range x.Inits {
			v, err := in.Eval(fi.Expr)
			if err != nil {
				return value.Nil, err
			}
			inits[fi.Name] = v
		}
		ref, err := in.Env.NewObject(x.Class, inits)
		if err != nil {
			return value.Nil, err
		}
		return value.Ref(ref), nil

	case *Unary:
		v, err := in.Eval(x.X)
		if err != nil {
			return value.Nil, err
		}
		switch x.Op {
		case "-":
			if i, ok := v.AsInt(); ok {
				return value.Int(-i), nil
			}
			if f, ok := v.AsFloat(); ok {
				return value.Float(-f), nil
			}
			return value.Nil, errf(x.Pos, "unary - on %s", v.Kind())
		case "!":
			return value.Bool(!v.Truthy()), nil
		default:
			return value.Nil, errf(x.Pos, "unknown unary operator %q", x.Op)
		}

	case *Binary:
		return in.evalBinary(x)

	case *ListLit:
		elems := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := in.Eval(el)
			if err != nil {
				return value.Nil, err
			}
			elems[i] = v
		}
		return value.List(elems...), nil

	case *Index:
		recv, err := in.Eval(x.Recv)
		if err != nil {
			return value.Nil, err
		}
		idxV, err := in.Eval(x.I)
		if err != nil {
			return value.Nil, err
		}
		idx, ok := idxV.AsInt()
		if !ok {
			return value.Nil, errf(x.Pos, "index must be an integer, got %s", idxV.Kind())
		}
		l, ok := recv.AsList()
		if !ok {
			return value.Nil, errf(x.Pos, "indexing a %s", recv.Kind())
		}
		if idx < 0 || int(idx) >= len(l) {
			return value.Nil, errf(x.Pos, "index %d out of range (len %d)", idx, len(l))
		}
		return l[idx], nil

	default:
		return value.Nil, fmt.Errorf("sentinelql: unknown expression %T", e)
	}
}

func (in *Interp) evalBinary(x *Binary) (value.Value, error) {
	// Short-circuit logical operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.Eval(x.L)
		if err != nil {
			return value.Nil, err
		}
		if x.Op == "&&" && !l.Truthy() {
			return value.Bool(false), nil
		}
		if x.Op == "||" && l.Truthy() {
			return value.Bool(true), nil
		}
		r, err := in.Eval(x.R)
		if err != nil {
			return value.Nil, err
		}
		return value.Bool(r.Truthy()), nil
	}

	l, err := in.Eval(x.L)
	if err != nil {
		return value.Nil, err
	}
	r, err := in.Eval(x.R)
	if err != nil {
		return value.Nil, err
	}

	switch x.Op {
	case "==":
		return value.Bool(l.Equal(r)), nil
	case "!=":
		return value.Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		if !comparable2(l, r) {
			return value.Nil, errf(x.Pos, "cannot compare %s with %s", l.Kind(), r.Kind())
		}
		c := l.Compare(r)
		switch x.Op {
		case "<":
			return value.Bool(c < 0), nil
		case "<=":
			return value.Bool(c <= 0), nil
		case ">":
			return value.Bool(c > 0), nil
		default:
			return value.Bool(c >= 0), nil
		}
	case "+":
		if ls, ok := l.AsString(); ok {
			if rs, ok2 := r.AsString(); ok2 {
				return value.Str(ls + rs), nil
			}
			return value.Str(ls + Render(r)), nil
		}
		return arith(x.Pos, "+", l, r)
	case "-", "*", "/", "%":
		return arith(x.Pos, x.Op, l, r)
	default:
		return value.Nil, errf(x.Pos, "unknown operator %q", x.Op)
	}
}

func comparable2(l, r value.Value) bool {
	if _, lnum := l.Numeric(); lnum {
		_, rnum := r.Numeric()
		return rnum
	}
	return l.Kind() == r.Kind()
}

func arith(pos Pos, op string, l, r value.Value) (value.Value, error) {
	li, lIsInt := l.AsInt()
	ri, rIsInt := r.AsInt()
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return value.Int(li + ri), nil
		case "-":
			return value.Int(li - ri), nil
		case "*":
			return value.Int(li * ri), nil
		case "/":
			if ri == 0 {
				return value.Nil, errf(pos, "integer division by zero")
			}
			return value.Int(li / ri), nil
		case "%":
			if ri == 0 {
				return value.Nil, errf(pos, "integer modulo by zero")
			}
			return value.Int(li % ri), nil
		}
	}
	lf, lok := l.Numeric()
	rf, rok := r.Numeric()
	if !lok || !rok {
		return value.Nil, errf(pos, "arithmetic %s on %s and %s", op, l.Kind(), r.Kind())
	}
	switch op {
	case "+":
		return value.Float(lf + rf), nil
	case "-":
		return value.Float(lf - rf), nil
	case "*":
		return value.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return value.Nil, errf(pos, "division by zero")
		}
		return value.Float(lf / rf), nil
	case "%":
		return value.Nil, errf(pos, "%% needs integer operands")
	}
	return value.Nil, errf(pos, "unknown operator %q", op)
}

// evalRef evaluates an expression that must denote an object.
func (in *Interp) evalRef(e Expr) (oid.OID, error) {
	v, err := in.Eval(e)
	if err != nil {
		return oid.Nil, err
	}
	ref, ok := v.AsRef()
	if !ok {
		return oid.Nil, fmt.Errorf("sentinelql: expected an object, got %s", v.Kind())
	}
	return ref, nil
}

// Render formats a value for print(): strings unquoted, everything else via
// Value.String.
func Render(v value.Value) string {
	if s, ok := v.AsString(); ok {
		return s
	}
	return v.String()
}
