// Package lang implements SentinelQL, the rule-definition and data-
// manipulation language of the database: event signatures and event
// expressions ("end Employee::SetSalary(float x)", "e1 and e2"), ECA rule
// declarations (RULE … ON … IF … THEN …, the paper's §2.1 surface syntax),
// class definitions with event interfaces, and a small statement/expression
// language used for rule conditions, rule actions and interpreted method
// bodies.
//
// The language is also the persistence format for first-class event and
// rule objects: the catalog stores source text and re-parses it on load,
// the moral equivalent of the paper's pointers-to-member-functions being
// re-bound on object activation.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokPunct // one of the operator/punctuation strings below
)

// Token is one lexical token. EndOff is the byte offset just past the
// token in the source.
type Token struct {
	Kind   TokKind
	Text   string
	Pos    Pos
	EndOff int
}

// Pos is a source position (1-based line and column, plus the byte offset
// into the source, which the parser uses to slice original source text for
// catalog persistence).
type Pos struct {
	Line, Col int
	Off       int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a parse or evaluation error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("sentinelql:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// punctuation and operators recognized by the lexer, longest first.
var puncts = []string{
	"::", ":=", "<=", ">=", "==", "!=", "&&", "||",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", ".", "!",
	"+", "-", "*", "/", "%", "<", ">", "=",
}
