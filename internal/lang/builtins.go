package lang

import (
	"math"

	"sentinel/internal/value"
)

// Builtin functions, callable in bare-call position (`len(x)`,
// `instances("Employee")`). Builtin names are reserved there; methods of
// self with the same name remain reachable as `self.Name(...)`.
//
// The set is aimed at the conditions the paper's examples need — e.g.
// Ode's `sal_greater_than_all_employees()` becomes
//
//	salary > max(pluck(instances("Employee"), "salary"))
//
// entirely in SentinelQL.
var builtinNames = map[string]bool{
	"instances": true, "len": true, "count": true, "sum": true,
	"min": true, "max": true, "contains": true, "pluck": true,
	"abs": true, "str": true, "lookup": true,
}

// IsBuiltin reports whether name is reserved as a builtin function.
func IsBuiltin(name string) bool { return builtinNames[name] }

func (in *Interp) callBuiltin(pos Pos, name string, args []value.Value) (value.Value, error) {
	argn := func(n int) error {
		if len(args) != n {
			return errf(pos, "%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "instances":
		if err := argn(1); err != nil {
			return value.Nil, err
		}
		cls, ok := args[0].AsString()
		if !ok {
			return value.Nil, errf(pos, `instances expects a class name string, e.g. instances("Employee")`)
		}
		ids, err := in.Env.Instances(cls)
		if err != nil {
			return value.Nil, err
		}
		elems := make([]value.Value, len(ids))
		for i, id := range ids {
			elems[i] = value.Ref(id)
		}
		return value.List(elems...), nil

	case "len", "count":
		if err := argn(1); err != nil {
			return value.Nil, err
		}
		if l, ok := args[0].AsList(); ok {
			return value.Int(int64(len(l))), nil
		}
		if s, ok := args[0].AsString(); ok {
			return value.Int(int64(len(s))), nil
		}
		return value.Nil, errf(pos, "%s expects a list or string, got %s", name, args[0].Kind())

	case "sum":
		if err := argn(1); err != nil {
			return value.Nil, err
		}
		l, ok := args[0].AsList()
		if !ok {
			return value.Nil, errf(pos, "sum expects a list, got %s", args[0].Kind())
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, e := range l {
			f, numOK := e.Numeric()
			if !numOK {
				return value.Nil, errf(pos, "sum over non-numeric element %s", e)
			}
			fsum += f
			if i, ok := e.AsInt(); ok {
				isum += i
			} else {
				allInt = false
			}
		}
		if allInt {
			return value.Int(isum), nil
		}
		return value.Float(fsum), nil

	case "min", "max":
		if err := argn(1); err != nil {
			return value.Nil, err
		}
		l, ok := args[0].AsList()
		if !ok {
			return value.Nil, errf(pos, "%s expects a list, got %s", name, args[0].Kind())
		}
		if len(l) == 0 {
			return value.Nil, errf(pos, "%s of an empty list", name)
		}
		best := l[0]
		for _, e := range l[1:] {
			c := e.Compare(best)
			if (name == "min" && c < 0) || (name == "max" && c > 0) {
				best = e
			}
		}
		return best, nil

	case "contains":
		if err := argn(2); err != nil {
			return value.Nil, err
		}
		l, ok := args[0].AsList()
		if !ok {
			return value.Nil, errf(pos, "contains expects a list, got %s", args[0].Kind())
		}
		for _, e := range l {
			if e.Equal(args[1]) {
				return value.Bool(true), nil
			}
		}
		return value.Bool(false), nil

	case "pluck":
		if err := argn(2); err != nil {
			return value.Nil, err
		}
		l, ok := args[0].AsList()
		if !ok {
			return value.Nil, errf(pos, "pluck expects a list, got %s", args[0].Kind())
		}
		attr, ok := args[1].AsString()
		if !ok {
			return value.Nil, errf(pos, "pluck expects an attribute name string")
		}
		out := make([]value.Value, 0, len(l))
		for _, e := range l {
			ref, ok := e.AsRef()
			if !ok {
				return value.Nil, errf(pos, "pluck over non-object element %s", e)
			}
			v, err := in.Env.GetAttr(ref, attr)
			if err != nil {
				return value.Nil, err
			}
			out = append(out, v)
		}
		return value.List(out...), nil

	case "lookup":
		if err := argn(3); err != nil {
			return value.Nil, err
		}
		cls, ok1 := args[0].AsString()
		attr, ok2 := args[1].AsString()
		if !ok1 || !ok2 {
			return value.Nil, errf(pos, `lookup expects (class, attribute, value), e.g. lookup("Employee", "name", "Fred")`)
		}
		ids, err := in.Env.LookupByAttr(cls, attr, args[2])
		if err != nil {
			return value.Nil, err
		}
		elems := make([]value.Value, len(ids))
		for i, id := range ids {
			elems[i] = value.Ref(id)
		}
		return value.List(elems...), nil

	case "abs":
		if err := argn(1); err != nil {
			return value.Nil, err
		}
		if i, ok := args[0].AsInt(); ok {
			if i < 0 {
				return value.Int(-i), nil
			}
			return value.Int(i), nil
		}
		if f, ok := args[0].AsFloat(); ok {
			return value.Float(math.Abs(f)), nil
		}
		return value.Nil, errf(pos, "abs expects a number, got %s", args[0].Kind())

	case "str":
		if err := argn(1); err != nil {
			return value.Nil, err
		}
		return value.Str(Render(args[0])), nil

	default:
		return value.Nil, errf(pos, "unknown builtin %q", name)
	}
}
