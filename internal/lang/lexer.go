package lang

import (
	"strings"
	"unicode"
)

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []Token
}

// lex tokenizes the source. Comments run from "//" or "#" to end of line.
func lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			lx.emit(Token{Kind: TokEOF, Pos: lx.here()})
			return lx.toks, nil
		}
		start := lx.here()
		c := lx.src[lx.pos]
		switch {
		case c == '"' || c == '\'':
			s, err := lx.lexString(c)
			if err != nil {
				return nil, err
			}
			lx.emit(Token{Kind: TokString, Text: s, Pos: start})
		case unicode.IsDigit(rune(c)):
			text, isFloat := lx.lexNumber()
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			lx.emit(Token{Kind: kind, Text: text, Pos: start})
		case isIdentStart(c):
			lx.emit(Token{Kind: TokIdent, Text: lx.lexIdent(), Pos: start})
		default:
			p := lx.matchPunct()
			if p == "" {
				return nil, errf(start, "unexpected character %q", string(c))
			}
			lx.emit(Token{Kind: TokPunct, Text: p, Pos: start})
		}
	}
}

func (lx *lexer) emit(t Token) {
	t.EndOff = lx.pos
	lx.toks = append(lx.toks, t)
}

func (lx *lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col, Off: lx.pos} }

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '#':
			lx.skipLine()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			lx.skipLine()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.advance(2)
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				lx.advance(1)
			}
			lx.advance(2)
		default:
			return
		}
	}
}

func (lx *lexer) skipLine() {
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.advance(1)
	}
}

func (lx *lexer) lexString(quote byte) (string, error) {
	start := lx.here()
	lx.advance(1)
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case quote:
			lx.advance(1)
			return b.String(), nil
		case '\\':
			if lx.pos+1 >= len(lx.src) {
				return "", errf(start, "unterminated string")
			}
			esc := lx.src[lx.pos+1]
			switch esc {
			case 'n':
				b.WriteByte('\n')
				lx.advance(2)
			case 't':
				b.WriteByte('\t')
				lx.advance(2)
			case 'r':
				b.WriteByte('\r')
				lx.advance(2)
			case 'a':
				b.WriteByte(7)
				lx.advance(2)
			case 'b':
				b.WriteByte(8)
				lx.advance(2)
			case 'f':
				b.WriteByte(12)
				lx.advance(2)
			case 'v':
				b.WriteByte(11)
				lx.advance(2)
			case '\\', '"', '\'':
				b.WriteByte(esc)
				lx.advance(2)
			case 'x':
				if lx.pos+3 >= len(lx.src) {
					return "", errf(lx.here(), "truncated \\x escape")
				}
				hi, ok1 := hexVal(lx.src[lx.pos+2])
				lo, ok2 := hexVal(lx.src[lx.pos+3])
				if !ok1 || !ok2 {
					return "", errf(lx.here(), "malformed \\x escape")
				}
				b.WriteByte(hi<<4 | lo)
				lx.advance(4)
			case 'u':
				if lx.pos+5 >= len(lx.src) {
					return "", errf(lx.here(), "truncated \\u escape")
				}
				var r rune
				for i := 0; i < 4; i++ {
					d, ok := hexVal(lx.src[lx.pos+2+i])
					if !ok {
						return "", errf(lx.here(), "malformed \\u escape")
					}
					r = r<<4 | rune(d)
				}
				b.WriteRune(r)
				lx.advance(6)
			default:
				return "", errf(lx.here(), "unknown escape \\%c", esc)
			}
		case '\n':
			return "", errf(start, "unterminated string")
		default:
			b.WriteByte(c)
			lx.advance(1)
		}
	}
	return "", errf(start, "unterminated string")
}

func (lx *lexer) lexNumber() (text string, isFloat bool) {
	start := lx.pos
	for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos])) {
		lx.advance(1)
	}
	if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '.' && unicode.IsDigit(rune(lx.src[lx.pos+1])) {
		isFloat = true
		lx.advance(1)
		for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos])) {
			lx.advance(1)
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.advance(1)
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.advance(1)
		}
		if lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos])) {
			isFloat = true
			for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos])) {
				lx.advance(1)
			}
		} else {
			// Not an exponent after all ("10e" would be ident-ish); back out.
			lx.pos = save
		}
	}
	return lx.src[start:lx.pos], isFloat
}

func (lx *lexer) lexIdent() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
		lx.advance(1)
	}
	return lx.src[start:lx.pos]
}

func (lx *lexer) matchPunct() string {
	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.advance(len(p))
			return p
		}
	}
	return ""
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}
