package lang

import (
	"fmt"
	"strings"
	"testing"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// mockEnv is an in-memory lang.Env for interpreter tests.
type mockEnv struct {
	attrs   map[oid.OID]map[string]value.Value
	selfID  oid.OID
	names   map[string]oid.OID
	sends   []string
	out     []string
	raised  []string
	subs    []string
	enabled map[string]bool
	nextOID oid.OID
}

func newMockEnv() *mockEnv {
	return &mockEnv{
		attrs:   make(map[oid.OID]map[string]value.Value),
		names:   make(map[string]oid.OID),
		enabled: make(map[string]bool),
		nextOID: 100,
	}
}

func (m *mockEnv) addObject(id oid.OID, attrs map[string]value.Value) {
	m.attrs[id] = attrs
}

func (m *mockEnv) GetAttr(obj oid.OID, attr string) (value.Value, error) {
	o, ok := m.attrs[obj]
	if !ok {
		return value.Nil, fmt.Errorf("no object %s", obj)
	}
	v, ok := o[attr]
	if !ok {
		return value.Nil, fmt.Errorf("no attr %q", attr)
	}
	return v, nil
}

func (m *mockEnv) SetAttr(obj oid.OID, attr string, v value.Value) error {
	o, ok := m.attrs[obj]
	if !ok {
		return fmt.Errorf("no object %s", obj)
	}
	o[attr] = v
	return nil
}

func (m *mockEnv) GetSelfAttr(attr string) (value.Value, bool, error) {
	if m.selfID.IsNil() {
		return value.Nil, false, nil
	}
	o := m.attrs[m.selfID]
	v, ok := o[attr]
	if !ok {
		return value.Nil, false, nil
	}
	return v, true, nil
}

func (m *mockEnv) Send(obj oid.OID, method string, args ...value.Value) (value.Value, error) {
	m.sends = append(m.sends, fmt.Sprintf("%s.%s/%d", obj, method, len(args)))
	if method == "Fail" {
		return value.Nil, fmt.Errorf("send failed")
	}
	if method == "Echo" && len(args) > 0 {
		return args[0], nil
	}
	return value.Int(int64(len(args))), nil
}

func (m *mockEnv) NewObject(class string, inits map[string]value.Value) (oid.OID, error) {
	m.nextOID++
	attrs := make(map[string]value.Value)
	for k, v := range inits {
		attrs[k] = v
	}
	m.attrs[m.nextOID] = attrs
	return m.nextOID, nil
}

func (m *mockEnv) LookupName(name string) (oid.OID, bool) {
	id, ok := m.names[name]
	return id, ok
}

func (m *mockEnv) BindName(name string, obj oid.OID) error {
	m.names[name] = obj
	return nil
}

func (m *mockEnv) Subscribe(rule string, target oid.OID) error {
	m.subs = append(m.subs, "sub:"+rule)
	return nil
}

func (m *mockEnv) Unsubscribe(rule string, target oid.OID) error {
	m.subs = append(m.subs, "unsub:"+rule)
	return nil
}

func (m *mockEnv) SetRuleEnabled(rule string, enabled bool) error {
	m.enabled[rule] = enabled
	return nil
}

func (m *mockEnv) Abort(reason string) error { return fmt.Errorf("ABORT: %s", reason) }

func (m *mockEnv) RaiseEvent(name string, args []value.Value) error {
	m.raised = append(m.raised, name)
	return nil
}

func (m *mockEnv) Output(s string) { m.out = append(m.out, s) }

func evalStr(t *testing.T, env *mockEnv, self oid.OID, src string) value.Value {
	t.Helper()
	ast, err := ParseCondition(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	in := NewInterp(env, self, nil)
	v, err := in.Eval(ast)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	env := newMockEnv()
	cases := map[string]value.Value{
		`1 + 2 * 3`:     value.Int(7),
		`(1 + 2) * 3`:   value.Int(9),
		`7 / 2`:         value.Int(3),
		`7.0 / 2`:       value.Float(3.5),
		`7 % 3`:         value.Int(1),
		`-4 + 1`:        value.Int(-3),
		`1.5 + 1`:       value.Float(2.5),
		`"a" + "b"`:     value.Str("ab"),
		`"n=" + 3`:      value.Str("n=3"),
		`2 < 3`:         value.Bool(true),
		`2 >= 3`:        value.Bool(false),
		`3 == 3.0`:      value.Bool(true),
		`"a" != "b"`:    value.Bool(true),
		`true && false`: value.Bool(false),
		`true || false`: value.Bool(true),
		`!true`:         value.Bool(false),
		`not false`:     value.Bool(true),
		`nil == nil`:    value.Bool(true),
	}
	for src, want := range cases {
		if got := evalStr(t, env, oid.Nil, src); !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := newMockEnv()
	bad := []string{
		`1 / 0`, `1 % 0`, `1.5 / 0.0`, `"a" - 1`, `1 < "a"`, `-"x"`,
		`unknownName`, `self`, `1.5 % 2.0`,
	}
	for _, src := range bad {
		ast, err := ParseCondition(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		in := NewInterp(env, oid.Nil, nil)
		if _, err := in.Eval(ast); err == nil {
			t.Errorf("eval %q: expected error", src)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	env := newMockEnv()
	// The right side would error (unknown name), but short-circuit skips it.
	if got := evalStr(t, env, oid.Nil, `false && missingName`); got.Truthy() {
		t.Error("short-circuit && wrong")
	}
	if got := evalStr(t, env, oid.Nil, `true || missingName`); !got.Truthy() {
		t.Error("short-circuit || wrong")
	}
}

func TestIdentResolutionOrder(t *testing.T) {
	env := newMockEnv()
	self := oid.OID(1)
	env.addObject(self, map[string]value.Value{"x": value.Int(10)})
	other := oid.OID(2)
	env.addObject(other, map[string]value.Value{"y": value.Int(99)})
	env.names["x"] = other // a name binding shadowed by the self attribute
	env.names["obj"] = other
	env.selfID = self

	scope := NewScope(nil)
	scope.Define("local", value.Int(1))
	in := NewInterp(env, self, scope)

	eval := func(src string) value.Value {
		ast, err := ParseCondition(src)
		if err != nil {
			t.Fatal(err)
		}
		v, err := in.Eval(ast)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		return v
	}

	if got := eval(`local`); !got.Equal(value.Int(1)) {
		t.Error("locals should resolve first")
	}
	// `x`: self attribute wins over the name binding.
	if got := eval(`x`); !got.Equal(value.Int(10)) {
		t.Errorf("self attribute should beat name binding: %v", got)
	}
	// `obj` resolves to the binding; attribute access through it.
	if got := eval(`obj.y`); !got.Equal(value.Int(99)) {
		t.Errorf("obj.y = %v", got)
	}
	if got := eval(`self.x`); !got.Equal(value.Int(10)) {
		t.Errorf("self.x = %v", got)
	}
}

func TestAssignTargets(t *testing.T) {
	env := newMockEnv()
	self := oid.OID(1)
	env.addObject(self, map[string]value.Value{"x": value.Int(0)})
	env.selfID = self
	other := oid.OID(2)
	env.addObject(other, map[string]value.Value{"y": value.Int(0)})
	env.names["o"] = other

	in := NewInterp(env, self, nil)
	stmts, err := ParseActions(`
		let a := 5
		a := a + 1
		x := 42
		o.y := a
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	if v, _ := in.Scope.Lookup("a"); !v.Equal(value.Int(6)) {
		t.Errorf("a = %v", v)
	}
	if v := env.attrs[self]["x"]; !v.Equal(value.Int(42)) {
		t.Errorf("self.x = %v", v)
	}
	if v := env.attrs[other]["y"]; !v.Equal(value.Int(6)) {
		t.Errorf("o.y = %v", v)
	}
	// Assignment to an unknown bare name fails.
	bad, _ := ParseActions(`zzz := 1`)
	if err := in.ExecStmts(bad); err == nil {
		t.Error("assignment to unknown name accepted")
	}
}

func TestControlFlow(t *testing.T) {
	env := newMockEnv()
	in := NewInterp(env, oid.Nil, nil)
	stmts, err := ParseActions(`
		let n := 5
		let sum := 0
		while n > 0 {
			sum := sum + n
			n := n - 1
		}
		if sum == 15 { print("ok", sum) } else { print("bad", sum) }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	if len(env.out) != 1 || env.out[0] != "ok 15" {
		t.Fatalf("out = %v", env.out)
	}
}

func TestWhileLoopBound(t *testing.T) {
	env := newMockEnv()
	in := NewInterp(env, oid.Nil, nil)
	stmts, _ := ParseActions(`while true { let x := 1 }`)
	if err := in.ExecStmts(stmts); err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Fatalf("infinite loop not bounded: %v", err)
	}
}

func TestMethodBodyReturn(t *testing.T) {
	env := newMockEnv()
	self := oid.OID(1)
	env.addObject(self, map[string]value.Value{"salary": value.Float(100)})
	env.selfID = self
	in := NewInterp(env, self, nil)
	stmts, _ := ParseActions(`
		if salary > 50.0 { return salary * 2.0 }
		return 0.0
	`)
	got, err := in.ExecBody(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(value.Float(200)) {
		t.Fatalf("return = %v", got)
	}
	// Falling off the end returns Nil.
	empty, _ := ParseActions(`let x := 1`)
	got, err = in.ExecBody(empty)
	if err != nil || !got.IsNil() {
		t.Fatalf("fallthrough = %v, %v", got, err)
	}
	// `return` outside a body surfaces as an error from ExecStmts.
	if err := in.ExecStmts(stmts); err == nil {
		t.Fatal("return escaped ExecStmts without error")
	}
}

func TestSendForms(t *testing.T) {
	env := newMockEnv()
	obj := oid.OID(5)
	env.addObject(obj, nil)
	env.names["o"] = obj
	in := NewInterp(env, oid.Nil, nil)
	stmts, _ := ParseActions(`
		o.Ping()
		o!Pong(1, 2)
		let v := o!Echo("hello")
		print(v)
	`)
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	if len(env.sends) != 3 || env.sends[0] != "oid:5.Ping/0" || env.sends[1] != "oid:5.Pong/2" {
		t.Fatalf("sends = %v", env.sends)
	}
	if env.out[0] != "hello" {
		t.Fatalf("out = %v", env.out)
	}
	// A bare call without self errors.
	bare, _ := ParseActions(`Ping()`)
	if err := in.ExecStmts(bare); err == nil {
		t.Fatal("bare call without self accepted")
	}
	// Send errors propagate.
	fail, _ := ParseActions(`o.Fail()`)
	if err := in.ExecStmts(fail); err == nil {
		t.Fatal("send failure swallowed")
	}
}

func TestNewBindSubscribeEnable(t *testing.T) {
	env := newMockEnv()
	in := NewInterp(env, oid.Nil, nil)
	stmts, err := ParseActions(`
		let p := new Person(name: "Ann", age: 30)
		bind Ann p
		subscribe Watch to p
		unsubscribe Watch from p
		enable Watch
		disable Watch
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	id, ok := env.names["Ann"]
	if !ok {
		t.Fatal("bind failed")
	}
	if !env.attrs[id]["name"].Equal(value.Str("Ann")) {
		t.Fatal("new inits lost")
	}
	if len(env.subs) != 2 || env.subs[0] != "sub:Watch" || env.subs[1] != "unsub:Watch" {
		t.Fatalf("subs = %v", env.subs)
	}
	if env.enabled["Watch"] {
		t.Fatal("disable did not win")
	}
}

func TestAbortAndRaise(t *testing.T) {
	env := newMockEnv()
	self := oid.OID(1)
	env.addObject(self, nil)
	in := NewInterp(env, self, nil)
	stmts, _ := ParseActions(`raise Overheat(99.0)`)
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	if len(env.raised) != 1 || env.raised[0] != "Overheat" {
		t.Fatalf("raised = %v", env.raised)
	}
	ab, _ := ParseActions(`abort "bad state"`)
	err := in.ExecStmts(ab)
	if err == nil || !strings.Contains(err.Error(), "bad state") {
		t.Fatalf("abort = %v", err)
	}
}

func TestScopeShadowing(t *testing.T) {
	outer := NewScope(nil)
	outer.Define("x", value.Int(1))
	inner := NewScope(outer)
	inner.Define("x", value.Int(2))
	if v, _ := inner.Lookup("x"); !v.Equal(value.Int(2)) {
		t.Fatal("inner lookup wrong")
	}
	if v, _ := outer.Lookup("x"); !v.Equal(value.Int(1)) {
		t.Fatal("outer polluted")
	}
	// assign through the chain updates the nearest definition.
	if !inner.assign("x", value.Int(3)) {
		t.Fatal("assign failed")
	}
	if v, _ := outer.Lookup("x"); !v.Equal(value.Int(1)) {
		t.Fatal("assign updated the wrong scope")
	}
}

func TestRender(t *testing.T) {
	if Render(value.Str("plain")) != "plain" {
		t.Error("strings should render unquoted")
	}
	if Render(value.Int(3)) != "3" {
		t.Error("ints render numerically")
	}
}

func (m *mockEnv) Instances(class string) ([]oid.OID, error) {
	var out []oid.OID
	for id := range m.attrs {
		out = append(out, id)
	}
	value.SortRefs(out)
	return out, nil
}

func TestBuiltins(t *testing.T) {
	env := newMockEnv()
	a, _ := env.NewObject("X", map[string]value.Value{"salary": value.Float(100)})
	b2, _ := env.NewObject("X", map[string]value.Value{"salary": value.Float(300)})
	_ = a
	_ = b2

	cases := map[string]value.Value{
		`len([1, 2, 3])`:                       value.Int(3),
		`count([1])`:                           value.Int(1),
		`len("abc")`:                           value.Int(3),
		`sum([1, 2, 3])`:                       value.Int(6),
		`sum([1.5, 2])`:                        value.Float(3.5),
		`min([3, 1, 2])`:                       value.Int(1),
		`max([3, 1, 2])`:                       value.Int(3),
		`max(["a", "c", "b"])`:                 value.Str("c"),
		`contains([1, 2], 2)`:                  value.Bool(true),
		`contains([1, 2], 9)`:                  value.Bool(false),
		`abs(-4)`:                              value.Int(4),
		`abs(-4.5)`:                            value.Float(4.5),
		`str(42)`:                              value.Str("42"),
		`[10, 20, 30][1]`:                      value.Int(20),
		`len(instances("X"))`:                  value.Int(2),
		`max(pluck(instances("X"), "salary"))`: value.Float(300),
		`sum(pluck(instances("X"), "salary"))`: value.Float(400),
	}
	for src, want := range cases {
		if got := evalStr(t, env, oid.Nil, src); !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	env := newMockEnv()
	bad := []string{
		`len(1)`, `sum("x")`, `sum([1, "a"])`, `min([])`, `max([])`,
		`contains(1, 2)`, `pluck([1], "a")`, `pluck([], 5)`, `abs("x")`,
		`instances(42)`, `len()`, `[1][5]`, `[1][-1]`, `(1)[0]`, `[1]["x"]`,
	}
	for _, src := range bad {
		ast, err := ParseCondition(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		in := NewInterp(env, oid.Nil, nil)
		if _, err := in.Eval(ast); err == nil {
			t.Errorf("eval %q: expected error", src)
		}
	}
}

func TestForStatement(t *testing.T) {
	env := newMockEnv()
	in := NewInterp(env, oid.Nil, nil)
	stmts, err := ParseActions(`
		let total := 0
		for x in [1, 2, 3, 4] {
			total := total + x
		}
		print(total)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	if len(env.out) != 1 || env.out[0] != "10" {
		t.Fatalf("out = %v", env.out)
	}
	// Iterating a non-list errors.
	bad, _ := ParseActions(`for x in 5 { }`)
	if err := in.ExecStmts(bad); err == nil {
		t.Fatal("for over scalar accepted")
	}
}

func (m *mockEnv) LookupByAttr(class, attr string, v value.Value) ([]oid.OID, error) {
	var out []oid.OID
	for id, attrs := range m.attrs {
		if got, ok := attrs[attr]; ok && got.Equal(v) {
			out = append(out, id)
		}
	}
	value.SortRefs(out)
	return out, nil
}

func (m *mockEnv) CreateIndex(class, attr string) error {
	m.out = append(m.out, "index:"+class+"."+attr)
	return nil
}

func (m *mockEnv) DropIndex(class, attr string) error {
	m.out = append(m.out, "unindex:"+class+"."+attr)
	return nil
}

func TestLookupBuiltinAndIndexStmt(t *testing.T) {
	env := newMockEnv()
	id, _ := env.NewObject("X", map[string]value.Value{"name": value.Str("Fred")})
	env.NewObject("X", map[string]value.Value{"name": value.Str("Mary")})

	got := evalStr(t, env, oid.Nil, `lookup("X", "name", "Fred")`)
	l, _ := got.AsList()
	if len(l) != 1 {
		t.Fatalf("lookup = %v", got)
	}
	if r, _ := l[0].AsRef(); r != id {
		t.Fatalf("lookup ref = %v, want %v", l[0], id)
	}

	in := NewInterp(env, oid.Nil, nil)
	stmts, err := ParseActions(`
		index X.name
		unindex X.name
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ExecStmts(stmts); err != nil {
		t.Fatal(err)
	}
	if len(env.out) != 2 || env.out[0] != "index:X.name" || env.out[1] != "unindex:X.name" {
		t.Fatalf("out = %v", env.out)
	}
	// Arity / type errors.
	for _, bad := range []string{`lookup("X")`, `lookup(1, "a", 2)`} {
		ast, err := ParseCondition(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Eval(ast); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}
