package lang

import (
	"strings"
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

func TestParseEventPrimitive(t *testing.T) {
	cases := map[string]string{
		`end Employee::SetSalary(float amount)`: "end Employee::SetSalary",
		`begin Person::Marry(Person spouse)`:    "begin Person::Marry",
		`end Account::Deposit`:                  "end Account::Deposit",
		`event Sensor::Overheat`:                "event Sensor::Overheat",
	}
	for src, want := range cases {
		e, err := ParseEventExpr(src, nil)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("parse %q = %q, want %q", src, got, want)
		}
	}
}

func TestParseEventOperatorsAndPrecedence(t *testing.T) {
	// or binds loosest, then and, then seq.
	e, err := ParseEventExpr(`end A::a or end B::b and end C::c seq end D::d`, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "(end A::a or (end B::b and (end C::c seq end D::d)))"
	if got := e.String(); got != want {
		t.Fatalf("precedence: %q, want %q", got, want)
	}
	// Parentheses override.
	e2, err := ParseEventExpr(`(end A::a or end B::b) and end C::c`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.String(); got != "((end A::a or end B::b) and end C::c)" {
		t.Fatalf("parens: %q", got)
	}
}

func TestParseEventExtendedOperators(t *testing.T) {
	cases := []string{
		`not(end B::b)[end A::a, end C::c]`,
		`any(2; end A::a; end B::b; end C::c)`,
		`aperiodic(end A::a; end B::b; end C::c)`,
		`periodic(end A::a; 50; end C::c)`,
	}
	for _, src := range cases {
		e, err := ParseEventExpr(src, nil)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if err := e.Validate(); err != nil {
			t.Errorf("%q invalid after parse: %v", src, err)
		}
	}
}

func TestParseEventNamedResolution(t *testing.T) {
	catalog := map[string]*event.Expr{
		"DepWit": event.Seq(event.Primitive(event.End, "A", "d"), event.Primitive(event.Begin, "A", "w")),
	}
	resolve := func(n string) (*event.Expr, bool) { e, ok := catalog[n]; return e, ok }
	e, err := ParseEventExpr(`DepWit or end B::x`, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "seq") {
		t.Fatalf("named event not inlined: %s", e)
	}
	if _, err := ParseEventExpr(`Unknown`, resolve); err == nil {
		t.Fatal("unknown named event accepted")
	}
	if _, err := ParseEventExpr(`Unknown`, nil); err == nil {
		t.Fatal("named event without catalog accepted")
	}
}

func TestParseEventErrors(t *testing.T) {
	bad := []string{
		``, `end`, `end Employee`, `end Employee::`, `end ::Set`,
		`end A::a and`, `(end A::a`, `any(x; end A::a)`, `periodic(end A::a; x; end B::b)`,
		`end A::a extra`,
	}
	for _, src := range bad {
		if _, err := ParseEventExpr(src, nil); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestParseRuleFull(t *testing.T) {
	src := `rule IncomeLevel
		on end Employee::ChangeIncome(float amount) or end Manager::ChangeIncome(float amount)
		if amount > 1000.0
		then { print("checking") }
		coupling deferred
		priority 7
		context chronicle`
	d, err := ParseRule(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "IncomeLevel" || d.Coupling != "deferred" || d.Priority != 7 || d.Context != "chronicle" {
		t.Fatalf("decl = %+v", d)
	}
	if d.Cond == nil || len(d.Action) != 1 {
		t.Fatal("condition or action missing")
	}
	if d.CondSrc != "amount > 1000.0" {
		t.Errorf("CondSrc = %q", d.CondSrc)
	}
	if d.ActionSrc != `print("checking")` {
		t.Errorf("ActionSrc = %q", d.ActionSrc)
	}
	if d.EventName == "" || !strings.Contains(d.EventName, "or") {
		t.Errorf("EventName = %q", d.EventName)
	}
}

func TestParseRuleWhenSynonymAndForClass(t *testing.T) {
	d, err := ParseRule(`rule R for Person when begin Person::Marry(Person s) then abort "no"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.ForClass != "Person" {
		t.Fatalf("ForClass = %q", d.ForClass)
	}
	if d.Cond != nil {
		t.Fatal("rule without IF should have nil condition")
	}
	if _, ok := d.Action[0].(*AbortStmt); !ok {
		t.Fatalf("action = %T", d.Action[0])
	}
}

func TestParseRuleNestedBracesInAction(t *testing.T) {
	src := `rule R on end A::a then {
		if x == 1 { print("one") } else { print("other") }
	}`
	d, err := ParseRule(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The sliced ActionSrc must re-parse cleanly (it is the persistent form).
	if _, err := ParseActions(d.ActionSrc); err != nil {
		t.Fatalf("ActionSrc %q does not re-parse: %v", d.ActionSrc, err)
	}
}

func TestParseRuleNegativePriority(t *testing.T) {
	d, err := ParseRule(`rule R on end A::a then print("x") priority -5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Priority != -5 {
		t.Fatalf("priority = %d", d.Priority)
	}
}

func TestParseClassDecl(t *testing.T) {
	src := `class Employee extends Person, Insurable reactive persistent {
		attr name string
		private attr salary float = 100.0
		protected attr level int
		event end method SetSalary(amount float) {
			self.salary := amount
		}
		event begin && end method Audit() { print("audit") }
		method Salary() float { return self.salary }
		rule Cap on end Employee::SetSalary(float amount) if amount > 1000000.0 then abort
	}`
	p, err := newParser(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.parseClass()
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Employee" || len(d.Bases) != 2 || !d.Reactive || !d.Persistent {
		t.Fatalf("header = %+v", d)
	}
	if len(d.Attrs) != 3 {
		t.Fatalf("attrs = %d", len(d.Attrs))
	}
	if d.Attrs[1].Visibility != schema.Private || !d.Attrs[1].Default.Equal(value.Float(100)) {
		t.Fatalf("salary attr = %+v", d.Attrs[1])
	}
	if len(d.Methods) != 3 {
		t.Fatalf("methods = %d", len(d.Methods))
	}
	if d.Methods[0].EventGen != schema.GenEnd {
		t.Error("SetSalary should be GenEnd")
	}
	if d.Methods[1].EventGen != schema.GenBoth {
		t.Error("Audit should be GenBoth")
	}
	if d.Methods[2].Returns == nil || d.Methods[2].Returns.Kind() != value.KindFloat {
		t.Error("Salary return type wrong")
	}
	if len(d.Rules) != 1 || d.Rules[0].Name != "Cap" {
		t.Fatalf("rules = %+v", d.Rules)
	}
	if !strings.HasPrefix(d.Source, "class Employee") || !strings.HasSuffix(d.Source, "}") {
		t.Errorf("Source capture wrong: %q...", d.Source[:30])
	}
}

func TestParseScriptMixed(t *testing.T) {
	src := `
		class A reactive { event end method M(x int) { self.v := x } attr v int }
		event Ding = end A::M(int x)
		rule R on Ding then print("ding")
		let a := new A()
		bind TheA a
		subscribe R to a
		a!M(42)
		enable R
		disable R
		unsubscribe R from a
	`
	s, err := ParseScript(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var classes, events, rules, stmts int
	for _, it := range s.Items {
		switch it.(type) {
		case *ClassDecl:
			classes++
		case *EventDecl:
			events++
		case *RuleDecl:
			rules++
		case Stmt:
			stmts++
		}
	}
	if classes != 1 || events != 1 || rules != 1 || stmts != 7 {
		t.Fatalf("items = %d/%d/%d/%d", classes, events, rules, stmts)
	}
}

func TestParseScriptNamedEventForwardUse(t *testing.T) {
	// An event declared in the same unit is usable by later rules even
	// though nothing has executed yet.
	src := `
		event E1 = end A::a
		event E2 = E1 seq end B::b
		rule R on E2 then print("x")
	`
	s, err := ParseScript(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd := s.Items[2].(*RuleDecl)
	if !strings.Contains(rd.Event.String(), "seq") {
		t.Fatalf("forward event not resolved: %s", rd.Event)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
		let x := 1 + 2 * 3
		x := x - 1
		obj.attr := 5
		obj!Send(1, "two")
		obj.Call()
		print(x, "done")
		if x > 3 { print("big") } else print("small")
		while x > 0 { x := x - 1 }
		raise Overheat(99.5)
		return x
	`
	stmts, err := ParseActions(src)
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []string{"*lang.Let", "*lang.Assign", "*lang.Assign", "*lang.ExprStmt",
		"*lang.ExprStmt", "*lang.PrintStmt", "*lang.IfStmt", "*lang.WhileStmt",
		"*lang.RaiseStmt", "*lang.ReturnStmt"}
	if len(stmts) != len(wantTypes) {
		t.Fatalf("%d statements", len(stmts))
	}
	for i, st := range stmts {
		if got := typeName(st); got != wantTypes[i] {
			t.Errorf("stmt %d: %s, want %s", i, got, wantTypes[i])
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *Let:
		return "*lang.Let"
	case *Assign:
		return "*lang.Assign"
	case *ExprStmt:
		return "*lang.ExprStmt"
	case *PrintStmt:
		return "*lang.PrintStmt"
	case *IfStmt:
		return "*lang.IfStmt"
	case *WhileStmt:
		return "*lang.WhileStmt"
	case *RaiseStmt:
		return "*lang.RaiseStmt"
	case *ReturnStmt:
		return "*lang.ReturnStmt"
	case *AbortStmt:
		return "*lang.AbortStmt"
	default:
		return "?"
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseCondition(`1 + 2 * 3 == 7 && !(4 < 3) || false`)
	if err != nil {
		t.Fatal(err)
	}
	// Top node must be ||.
	b, ok := e.(*Binary)
	if !ok || b.Op != "||" {
		t.Fatalf("top = %T %v", e, e)
	}
	l, ok := b.L.(*Binary)
	if !ok || l.Op != "&&" {
		t.Fatalf("left = %T", b.L)
	}
}

func TestParseNewExpr(t *testing.T) {
	e, err := ParseCondition(`new Employee(name: "Fred", salary: 100.0)`)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := e.(*NewExpr)
	if !ok || n.Class != "Employee" || len(n.Inits) != 2 {
		t.Fatalf("new = %+v", e)
	}
}

func TestParseBangSend(t *testing.T) {
	e, err := ParseCondition(`IBM!GetPrice() < 80.0 and DowJones!Change < 3.4`)
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*Binary)
	lc := b.L.(*Binary).L
	if _, ok := lc.(*Call); !ok {
		t.Fatalf("IBM!GetPrice() parsed as %T", lc)
	}
	// Bang send without parens is also a call (paper's IBM!SetPrice form).
	rc := b.R.(*Binary).L
	if _, ok := rc.(*Call); !ok {
		t.Fatalf("DowJones!Change parsed as %T", rc)
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		`let := 3`,
		`1 + := 2`,
		`if { }`,
		`obj.`,
		`new Class(name "x")`,
		`subscribe R x`,
		`{ unterminated`,
		`(1 + 2`,
	}
	for _, src := range bad {
		if _, err := ParseActions(src); err == nil {
			t.Errorf("ParseActions(%q): expected error", src)
		}
	}
}

func TestParseTypeNames(t *testing.T) {
	src := `class T { attr a int attr b float attr c string attr d bool attr e Person attr f list<int> attr g list<Person> }`
	p, _ := newParser(src, nil)
	d, err := p.parseClass()
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"int", "float", "string", "bool", "ref<Person>", "list<int>", "list<ref<Person>>"}
	for i, w := range wants {
		if got := d.Attrs[i].Type.String(); got != w {
			t.Errorf("attr %d type = %q, want %q", i, got, w)
		}
	}
}

func TestParseAperiodicStarAndGoRefs(t *testing.T) {
	e, err := ParseEventExpr(`aperiodic_star(end A::open; end A::tick; end A::close)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != event.OpAperiodicStar {
		t.Fatalf("op = %v", e.Op)
	}
	// The rendering round-trips.
	if _, err := ParseEventExpr(e.String(), nil); err != nil {
		t.Fatalf("rendering %q does not re-parse: %v", e.String(), err)
	}

	d, err := ParseRule(`rule R on end A::a if go:myCond then go:myAct`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.CondSrc != "go:myCond" || d.ActionSrc != "go:myAct" {
		t.Fatalf("go refs: cond=%q act=%q", d.CondSrc, d.ActionSrc)
	}
	if d.Cond != nil || d.Action != nil {
		t.Fatal("go refs should leave ASTs nil")
	}
}

// TestEventExprRoundtripProperty: every renderable event expression
// re-parses to an identical rendering (String is the persistence format).
func TestEventExprRoundtripProperty(t *testing.T) {
	rng := newDeterministicRand()
	var gen func(depth int) *event.Expr
	classes := []string{"A", "Bee", "Cc"}
	methods := []string{"m1", "Do", "Xyz"}
	moments := []event.Moment{event.Begin, event.End, event.Explicit}
	gen = func(depth int) *event.Expr {
		if depth <= 0 || rng()%3 == 0 {
			return event.Primitive(moments[rng()%3], classes[rng()%3], methods[rng()%3])
		}
		switch rng() % 8 {
		case 0:
			return event.And(gen(depth-1), gen(depth-1))
		case 1:
			return event.Or(gen(depth-1), gen(depth-1))
		case 2:
			return event.Seq(gen(depth-1), gen(depth-1))
		case 3:
			return event.Not(gen(depth-1), gen(depth-1), gen(depth-1))
		case 4:
			n := int(rng()%3) + 1
			kids := make([]*event.Expr, n)
			for i := range kids {
				kids[i] = gen(depth - 1)
			}
			return event.Any(int(rng()%uint32(n))+1, kids...)
		case 5:
			return event.Aperiodic(gen(depth-1), gen(depth-1), gen(depth-1))
		case 6:
			return event.AperiodicStar(gen(depth-1), gen(depth-1), gen(depth-1))
		default:
			return event.Periodic(gen(depth-1), uint64(rng()%100)+1, gen(depth-1))
		}
	}
	for i := 0; i < 500; i++ {
		e := gen(3)
		src := e.String()
		parsed, err := ParseEventExpr(src, nil)
		if err != nil {
			t.Fatalf("case %d: %q does not parse: %v", i, src, err)
		}
		if parsed.String() != src {
			t.Fatalf("case %d: roundtrip drift:\n  in:  %s\n  out: %s", i, src, parsed.String())
		}
	}
}

// newDeterministicRand returns a tiny xorshift generator so the property
// test is reproducible without math/rand seeding ceremony.
func newDeterministicRand() func() uint32 {
	state := uint32(0x9E3779B9)
	return func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
}
