package lang

import (
	"strconv"
	"strings"

	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// ---- statements ----

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.atPunct("}") {
		if p.atEOF() {
			return nil, errf(p.cur().Pos, "unterminated block")
		}
		if p.acceptPunct(";") {
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	p.next() // consume "}"
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &IfStmt{Pos: t.Pos, Cond: &Lit{Pos: t.Pos, Val: value.Bool(true)}, Then: body}, nil

	case p.atKw("let"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !p.acceptPunct(":=") && !p.acceptPunct("=") {
			return nil, errf(p.cur().Pos, "expected := in let")
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Let{Pos: t.Pos, Name: name.Text, Expr: e}, nil

	case p.atKw("abort"):
		p.next()
		reason := "aborted by rule"
		if p.cur().Kind == TokString {
			reason = p.next().Text
		}
		return &AbortStmt{Pos: t.Pos, Reason: reason}, nil

	case p.atKw("raise"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return &RaiseStmt{Pos: t.Pos, Name: name.Text, Args: args}, nil

	case p.atKw("return"):
		p.next()
		st := &ReturnStmt{Pos: t.Pos}
		if !p.atPunct(";") && !p.atPunct("}") && !p.atEOF() {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		return st, nil

	case p.atKw("print"):
		p.next()
		args, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return &PrintStmt{Pos: t.Pos, Args: args}, nil

	case p.atKw("if"):
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var thenB []Stmt
		if p.atPunct("{") {
			thenB, err = p.parseBlock()
		} else if p.acceptKw("then") {
			var st Stmt
			st, err = p.parseStmt()
			thenB = []Stmt{st}
		} else {
			var st Stmt
			st, err = p.parseStmt()
			thenB = []Stmt{st}
		}
		if err != nil {
			return nil, err
		}
		var elseB []Stmt
		if p.acceptKw("else") {
			if p.atPunct("{") {
				elseB, err = p.parseBlock()
			} else {
				var st Stmt
				st, err = p.parseStmt()
				elseB = []Stmt{st}
			}
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Pos: t.Pos, Cond: cond, Then: thenB, Else: elseB}, nil

	case p.atKw("while"):
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil

	case p.atKw("for"):
		p.next()
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("in") {
			return nil, errf(p.cur().Pos, "expected `in` in for statement")
		}
		seq, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: t.Pos, Var: v.Text, Seq: seq, Body: body}, nil

	case p.atKw("bind"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		p.acceptPunct("=")
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &BindStmt{Pos: t.Pos, Name: name.Text, Expr: e}, nil

	case p.atKw("subscribe") || p.atKw("unsubscribe"):
		unsub := p.atKw("unsubscribe")
		p.next()
		rn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("to") && !p.acceptKw("from") {
			return nil, errf(p.cur().Pos, "expected to/from in subscribe")
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &SubscribeStmt{Pos: t.Pos, Rule: rn.Text, Target: e, Unsubscribe: unsub}, nil

	case p.atKw("index") || p.atKw("unindex"):
		drop := p.atKw("unindex")
		p.next()
		cls, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("."); err != nil {
			return nil, err
		}
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &IndexStmt{Pos: t.Pos, Class: cls.Text, Attr: attr.Text, Drop: drop}, nil

	case p.atKw("enable") || p.atKw("disable"):
		dis := p.atKw("disable")
		p.next()
		rn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &RuleCtlStmt{Pos: t.Pos, Rule: rn.Text, Disable: dis}, nil
	}

	// Expression-leading statements: assignment or expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct(":=") {
		switch e.(type) {
		case *Ident, *AttrAccess:
		default:
			return nil, errf(t.Pos, "invalid assignment target")
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: t.Pos, Target: e, Value: v}, nil
	}
	return &ExprStmt{Pos: t.Pos, X: e}, nil
}

func (p *parser) parseArgList() ([]Expr, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Expr
	if p.acceptPunct(")") {
		return out, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.acceptPunct(")") {
			return out, nil
		}
		if _, err := p.expectPunct(","); err != nil {
			return nil, err
		}
	}
}

// ---- expressions ----

// precedence: || / or  <  && / and  <  comparison  <  + -  <  * / %  <  unary  <  postfix
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if p.acceptPunct("||") || p.acceptKw("or") {
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = &Binary{Pos: t.Pos, Op: "||", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if p.acceptPunct("&&") || p.acceptKw("and") {
			r, err := p.parseCmp()
			if err != nil {
				return nil, err
			}
			l = &Binary{Pos: t.Pos, Op: "&&", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		switch {
		case p.acceptPunct("<="):
			op = "<="
		case p.acceptPunct(">="):
			op = ">="
		case p.acceptPunct("=="):
			op = "=="
		case p.acceptPunct("!="):
			op = "!="
		case p.acceptPunct("<"):
			op = "<"
		case p.acceptPunct(">"):
			op = ">"
		default:
			return l, nil
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: t.Pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		switch {
		case p.acceptPunct("+"):
			op = "+"
		case p.acceptPunct("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: t.Pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		switch {
		case p.acceptPunct("*"):
			op = "*"
		case p.acceptPunct("/"):
			op = "/"
		case p.acceptPunct("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: t.Pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch {
	case p.acceptPunct("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: "-", X: x}, nil
	case p.atPunct("!") && !p.isBangSend():
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: "!", X: x}, nil
	case p.atKw("not"):
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: "!", X: x}, nil
	default:
		return p.parsePostfix()
	}
}

// isBangSend reports whether the current "!" is the message-send operator
// (`obj!Method(...)`) rather than logical negation — it is a send only when
// it follows a postfix-expression, which parseUnary never sees (the postfix
// loop consumes it). Leading "!" is always negation.
func (p *parser) isBangSend() bool { return false }

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.acceptPunct("."):
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.atPunct("(") {
				args, err := p.parseArgList()
				if err != nil {
					return nil, err
				}
				e = &Call{Pos: t.Pos, Recv: e, Name: name.Text, Args: args}
			} else {
				e = &AttrAccess{Pos: t.Pos, Recv: e, Name: name.Text}
			}
		case p.atPunct("!") && p.peek(1).Kind == TokIdent:
			// The paper's send syntax: IBM!SetPrice(91).
			p.next()
			name, _ := p.expectIdent()
			var args []Expr
			if p.atPunct("(") {
				args, err = p.parseArgList()
				if err != nil {
					return nil, err
				}
			}
			e = &Call{Pos: t.Pos, Recv: e, Name: name.Text, Args: args}
		case p.acceptPunct("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Index{Pos: t.Pos, Recv: e, I: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer %q", t.Text)
		}
		return &Lit{Pos: t.Pos, Val: value.Int(n)}, nil
	case t.Kind == TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float %q", t.Text)
		}
		return &Lit{Pos: t.Pos, Val: value.Float(f)}, nil
	case t.Kind == TokString:
		p.next()
		return &Lit{Pos: t.Pos, Val: value.Str(t.Text)}, nil
	case p.atKw("true"):
		p.next()
		return &Lit{Pos: t.Pos, Val: value.Bool(true)}, nil
	case p.atKw("false"):
		p.next()
		return &Lit{Pos: t.Pos, Val: value.Bool(false)}, nil
	case p.atKw("nil"):
		p.next()
		return &Lit{Pos: t.Pos, Val: value.Nil}, nil
	case p.atKw("self"):
		p.next()
		return &SelfExpr{Pos: t.Pos}, nil
	case p.atKw("new"):
		p.next()
		cls, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ne := &NewExpr{Pos: t.Pos, Class: cls.Text}
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if !p.acceptPunct(")") {
			for {
				fn, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				fe, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ne.Inits = append(ne.Inits, FieldInit{Name: fn.Text, Expr: fe})
				if p.acceptPunct(")") {
					break
				}
				if _, err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
		}
		return ne, nil
	case p.acceptPunct("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.acceptPunct("["):
		ll := &ListLit{Pos: t.Pos}
		if !p.acceptPunct("]") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ll.Elems = append(ll.Elems, e)
				if p.acceptPunct("]") {
					break
				}
				if _, err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
		}
		return ll, nil
	case t.Kind == TokIdent:
		p.next()
		if p.atPunct("(") {
			// Bare call: a send to self.
			args, err := p.parseArgList()
			if err != nil {
				return nil, err
			}
			return &Call{Pos: t.Pos, Recv: nil, Name: t.Text, Args: args}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	default:
		return nil, errf(t.Pos, "expected expression, got %q", t.Text)
	}
}

// ---- class declarations ----

func (p *parser) parseClass() (*ClassDecl, error) {
	start, err := p.expectKw("class")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &ClassDecl{Pos: start.Pos, Name: name.Text}
	if p.acceptKw("extends") {
		for {
			b, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Bases = append(d.Bases, b.Text)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	for {
		switch {
		case p.acceptKw("reactive"):
			d.Reactive = true
		case p.acceptKw("notifiable"):
			d.Notifiable = true
		case p.acceptKw("persistent"):
			d.Persistent = true
		case p.acceptKw("abstract"):
			d.Abstract = true
		default:
			goto body
		}
	}
body:
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atPunct("}") {
		if p.atEOF() {
			return nil, errf(p.cur().Pos, "unterminated class %s", d.Name)
		}
		if p.acceptPunct(";") {
			continue
		}
		vis := schema.Public
		switch {
		case p.acceptKw("public"):
			vis = schema.Public
		case p.acceptKw("protected"):
			vis = schema.Protected
		case p.acceptKw("private"):
			vis = schema.Private
		}
		switch {
		case p.atKw("attr") || p.atKw("attribute"):
			a, err := p.parseAttrDecl(vis)
			if err != nil {
				return nil, err
			}
			d.Attrs = append(d.Attrs, a)
		case p.atKw("event") || p.atKw("method"):
			m, err := p.parseMethodDecl(vis)
			if err != nil {
				return nil, err
			}
			d.Methods = append(d.Methods, m)
		case p.atKw("rule"):
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			d.Rules = append(d.Rules, *r)
		default:
			return nil, errf(p.cur().Pos, "unexpected %q in class body", p.cur().Text)
		}
	}
	p.next() // consume "}"
	d.Source = p.sliceFrom(start.Pos)
	return d, nil
}

func (p *parser) parseAttrDecl(vis schema.Visibility) (AttrDecl, error) {
	t := p.next() // attr / attribute
	name, err := p.expectIdent()
	if err != nil {
		return AttrDecl{}, err
	}
	ty, err := p.parseTypeName()
	if err != nil {
		return AttrDecl{}, err
	}
	a := AttrDecl{Pos: t.Pos, Name: name.Text, Type: ty, Visibility: vis}
	if p.acceptPunct("=") || p.acceptPunct(":=") {
		lit, err := p.parsePrimary()
		if err != nil {
			return AttrDecl{}, err
		}
		l, ok := lit.(*Lit)
		if !ok {
			// Allow unary minus on literals.
			if u, isU := lit.(*Unary); isU && u.Op == "-" {
				if il, isL := u.X.(*Lit); isL {
					a.Default = negate(il.Val)
					return a, nil
				}
			}
			return AttrDecl{}, errf(t.Pos, "attribute default must be a literal")
		}
		a.Default = l.Val
	}
	return a, nil
}

func negate(v value.Value) value.Value {
	if i, ok := v.AsInt(); ok {
		return value.Int(-i)
	}
	if f, ok := v.AsFloat(); ok {
		return value.Float(-f)
	}
	return v
}

func (p *parser) parseMethodDecl(vis schema.Visibility) (MethodDecl, error) {
	t := p.cur()
	gen := schema.GenNone
	if p.acceptKw("event") {
		switch {
		case p.acceptKw("begin"):
			if p.acceptPunct("&&") {
				if _, err := p.expectKw("end"); err != nil {
					return MethodDecl{}, err
				}
				gen = schema.GenBoth
			} else {
				gen = schema.GenBegin
			}
		case p.acceptKw("end"):
			gen = schema.GenEnd
		case p.acceptKw("both"):
			gen = schema.GenBoth
		default:
			return MethodDecl{}, errf(p.cur().Pos, "expected begin/end/both after event")
		}
	}
	if _, err := p.expectKw("method"); err != nil {
		return MethodDecl{}, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return MethodDecl{}, err
	}
	m := MethodDecl{Pos: t.Pos, Name: name.Text, Visibility: vis, EventGen: gen}
	if _, err := p.expectPunct("("); err != nil {
		return MethodDecl{}, err
	}
	if !p.acceptPunct(")") {
		for {
			pn, err := p.expectIdent()
			if err != nil {
				return MethodDecl{}, err
			}
			pt, err := p.parseTypeName()
			if err != nil {
				return MethodDecl{}, err
			}
			m.Params = append(m.Params, schema.Param{Name: pn.Text, Type: pt})
			if p.acceptPunct(")") {
				break
			}
			if _, err := p.expectPunct(","); err != nil {
				return MethodDecl{}, err
			}
		}
	}
	if !p.atPunct("{") {
		rt, err := p.parseTypeName()
		if err != nil {
			return MethodDecl{}, err
		}
		m.Returns = rt
	}
	body, err := p.parseBlock()
	if err != nil {
		return MethodDecl{}, err
	}
	m.Body = body
	return m, nil
}

func (p *parser) parseTypeName() (*value.Type, error) {
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	name := t.Text
	if strings.EqualFold(name, "list") && p.acceptPunct("<") {
		inner, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		return value.TypeList(inner), nil
	}
	ty, err := value.ParseType(name)
	if err != nil {
		return nil, errf(t.Pos, "%v", err)
	}
	return ty, nil
}
