package lang

// Fuzz targets for the SentinelQL parser: arbitrary source text must
// produce a clean error or a valid parse — never a panic or a hang. The
// event-expression target additionally checks the print/re-parse fixpoint:
// whatever the parser accepts, Expr.String() must render back into
// something the parser accepts as the same expression.

import (
	"testing"

	"sentinel/internal/event"
)

// fuzzResolver answers every named-event lookup with a fixed primitive, so
// fuzz inputs referencing names still explore the resolution paths.
func fuzzResolver(name string) (*event.Expr, bool) {
	if name == "Known" {
		return event.Primitive(event.End, "C", "M"), true
	}
	return nil, false
}

func FuzzParseScript(f *testing.F) {
	f.Add("")
	f.Add(`class Item reactive persistent {
		attr val int
		event end method SetVal(v int) { self.val := v }
	}
	rule Bump for Item on end Item::SetVal(int v)
		if self.val > 0 then self.val := self.val + 1
	bind A new Item(val: 3)
	A!SetVal(4)
	subscribe Bump to A`)
	f.Add(`evolve class Item reactive persistent { attr tag string = "fresh" }`)
	f.Add(`event Burst = end T::Fill(int n) and begin T::Drain()`)
	f.Add(`rule R on (end A::B() ; end C::D()) then print("seq")`)
	f.Add(`rule N on not(end A::B(), end C::D(), end E::F()) then raise X(1)`)
	f.Add(`rule P on P(end A::B(), 5, end C::D()) then print(1/0)`)
	f.Add("rule R on any(2, end A::B(), end C::D()) then unsubscribe R from self")
	f.Add("# comment only\n")
	f.Add(`bind X new T(a: "un" + "terminated)`)
	f.Fuzz(func(t *testing.T, src string) {
		script, err := ParseScript(src, fuzzResolver)
		if err == nil && script == nil {
			t.Fatal("nil script with nil error")
		}
	})
}

func FuzzParseEventExpr(f *testing.F) {
	f.Add("end Item::SetVal(int v)")
	f.Add("begin A::B() and end C::D()")
	f.Add("end A::B() or (end C::D() ; end E::F())")
	f.Add("not(end A::B(), end C::D(), end E::F())")
	f.Add("any(2, end A::B(), end C::D(), end E::F())")
	f.Add("A(end A::B(), end C::D(), end E::F())")
	f.Add("A*(end A::B(), end C::D(), end E::F())")
	f.Add("P(end A::B(), 3, end C::D())")
	f.Add("Known and end X::Y()")
	f.Add("event D::Worn")
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseEventExpr(src, fuzzResolver)
		if err != nil {
			return
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid expression: %v\nsource: %q", err, src)
		}
		// Print/re-parse fixpoint.
		rendered := e.String()
		e2, err := ParseEventExpr(rendered, fuzzResolver)
		if err != nil {
			t.Fatalf("rendering %q of accepted input %q failed to re-parse: %v", rendered, src, err)
		}
		if got := e2.String(); got != rendered {
			t.Fatalf("render not a fixpoint: %q -> %q (input %q)", rendered, got, src)
		}
	})
}
