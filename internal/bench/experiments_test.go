package bench

import (
	"io"
	"strings"
	"testing"
)

// TestExperimentsRun exercises every experiment end-to-end at reduced sizes
// and sanity-checks the headline results (full-size runs live in
// cmd/sentinel-bench and the root benchmark suite).
func TestExperimentsRun(t *testing.T) {
	e1 := RunE1().String()
	for _, sys := range []string{"Sentinel", "Ode-style", "ADAM-style"} {
		if !strings.Contains(e1, sys) {
			t.Fatalf("E1 missing row for %s:\n%s", sys, e1)
		}
	}
	// All three systems must allow 12 and block exactly the 12 violating
	// updates.
	if strings.Count(e1, "12       12") != 3 {
		t.Fatalf("E1: expected 12 allowed / 12 blocked on all three systems:\n%s", e1)
	}

	e2 := RunE2().String()
	if !strings.Contains(e2, "Sentinel") || !strings.Contains(e2, "yes") {
		t.Fatalf("E2: malformed table:\n%s", e2)
	}

	RunP1([]int{10, 50}, 200)
	RunP2(1000)
	RunP3(10000)
	RunP4([]int{50})
	RunP5([]int{50}, 200)
	RunP6(10, 5)
	RunP7([]int{50})
	RunP8(1000)
	RunP9([]int{50}, 50)
	RunP10([]int{1, 2}, 10)
	RunC1().Fprint(io.Discard)
}

// TestE1RuleArtifactCounts pins the expressiveness claim: one Sentinel rule
// replaces two Ode constraints and two ADAM rule objects.
func TestE1RuleArtifactCounts(t *testing.T) {
	e1 := RunE1().String()
	if !strings.Contains(e1, "Sentinel    1") {
		t.Errorf("Sentinel should need exactly 1 rule artifact:\n%s", e1)
	}
	if !strings.Contains(e1, "Ode-style   2") {
		t.Errorf("Ode should need 2 constraint declarations:\n%s", e1)
	}
	if !strings.Contains(e1, "ADAM-style  2") {
		t.Errorf("ADAM should need 2 rule objects:\n%s", e1)
	}
}

// TestE2SentinelFiresOnce pins the inter-class conjunction behaviour.
func TestE2SentinelFiresOnce(t *testing.T) {
	e2 := RunE2().String()
	if !strings.Contains(e2, "Sentinel    1               none                      1") {
		t.Fatalf("E2: Sentinel should express the purchase rule as 1 rule firing once:\n%s", e2)
	}
}
