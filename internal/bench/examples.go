package bench

import (
	"sentinel/internal/baseline/adam"
	"sentinel/internal/baseline/ode"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

// SalaryCheckSentinel installs the paper's §5.1 Salary-check rule the
// Sentinel way: ONE class-level rule on Employee. Subclass-aware signature
// matching means `end Employee::SetSalary` also covers Manager (a subclass),
// so the single rule monitors both classes — the expressiveness §5.1
// contrasts with Ode's two complementary constraints (Fig. 11) and ADAM's
// two rule objects (Fig. 13).
func SalaryCheckSentinel(db *core.Database) error {
	cond := func(ctx rule.ExecContext, det event.Detection) (bool, error) {
		occ := det.Last()
		newSal, _ := occ.Args[0].Numeric()
		if occ.Class == "Manager" {
			// Violated if any subordinate earns >= the manager's new salary.
			for _, e := range db.InstancesOf("Employee") {
				if e == occ.Source {
					continue
				}
				mgrV, err := ctx.GetAttr(e, "mgr")
				if err != nil {
					return false, err
				}
				if mgr, ok := mgrV.AsRef(); !ok || mgr != occ.Source {
					continue
				}
				salV, err := ctx.GetAttr(e, "salary")
				if err != nil {
					return false, err
				}
				sal, _ := salV.Numeric()
				if sal >= newSal {
					return true, nil
				}
			}
			return false, nil
		}
		// Employee: violated if the new salary >= the manager's.
		mgrV, err := ctx.GetAttr(occ.Source, "mgr")
		if err != nil {
			return false, err
		}
		mgr, ok := mgrV.AsRef()
		if !ok || mgr.IsNil() {
			return false, nil
		}
		mSalV, err := ctx.GetAttr(mgr, "salary")
		if err != nil {
			return false, err
		}
		mSal, _ := mSalV.Numeric()
		return newSal >= mSal, nil
	}
	return db.Atomically(func(t *core.Tx) error {
		_, err := db.CreateRule(t, core.RuleSpec{
			Name:       "SalaryCheck",
			Event:      event.Primitive(event.End, "Employee", "SetSalary"),
			Condition:  cond,
			ActionSrc:  `abort "salary check violated"`,
			ClassLevel: "Employee",
		})
		return err
	})
}

// SalaryCheckOde installs the same business rule the Ode way: two
// complementary hard constraints, one in each class's rule section
// (Fig. 11). Returns the number of declarations needed.
func SalaryCheckOde(db *core.Database, sys *ode.System) (declarations int, err error) {
	empPred := func(ctx rule.ExecContext, self oid.OID) (bool, error) {
		salV, err := ctx.GetAttr(self, "salary")
		if err != nil {
			return false, err
		}
		sal, _ := salV.Numeric()
		mgrV, err := ctx.GetAttr(self, "mgr")
		if err != nil {
			return false, err
		}
		mgr, ok := mgrV.AsRef()
		if !ok || mgr.IsNil() {
			return true, nil
		}
		mSalV, err := ctx.GetAttr(mgr, "salary")
		if err != nil {
			return false, err
		}
		mSal, _ := mSalV.Numeric()
		return sal < mSal, nil
	}
	mgrPred := func(ctx rule.ExecContext, self oid.OID) (bool, error) {
		mSalV, err := ctx.GetAttr(self, "salary")
		if err != nil {
			return false, err
		}
		mSal, _ := mSalV.Numeric()
		for _, e := range db.InstancesOf("Employee") {
			if e == self {
				continue
			}
			mv, err := ctx.GetAttr(e, "mgr")
			if err != nil {
				return false, err
			}
			if m, ok := mv.AsRef(); !ok || m != self {
				continue
			}
			sv, err := ctx.GetAttr(e, "salary")
			if err != nil {
				return false, err
			}
			s, _ := sv.Numeric()
			if s >= mSal {
				return false, nil
			}
		}
		return true, nil
	}
	err = db.Atomically(func(t *core.Tx) error {
		if err := sys.EnrollClass(t, ode.ClassRules{
			Class:       "Employee",
			Constraints: []ode.Constraint{{Name: "sal_lt_mgr", Severity: ode.Hard, Pred: empPred}},
		}); err != nil {
			return err
		}
		return sys.EnrollClass(t, ode.ClassRules{
			Class:       "Manager",
			Constraints: []ode.Constraint{{Name: "sal_gt_all_emps", Severity: ode.Hard, Pred: mgrPred}},
		})
	})
	return 2, err
}

// SalaryCheckAdam installs the rule the ADAM way: two rule objects, one per
// active-class, since the condition differs by class and one rule cannot
// span both usefully (Fig. 13). Returns the number of rule objects.
func SalaryCheckAdam(db *core.Database, sys *adam.System) (ruleObjects int, err error) {
	err = db.Atomically(func(t *core.Tx) error {
		if err := sys.EnrollClass(t, "Employee"); err != nil {
			return err
		}
		return sys.EnrollClass(t, "Manager")
	})
	if err != nil {
		return 0, err
	}
	empRule := &adam.Rule{
		Name: "emp-salary", ActiveClass: "Employee", ActiveMethod: "SetSalary",
		When: event.End, Enabled: true,
		Cond: func(ctx rule.ExecContext, occ event.Occurrence) (bool, error) {
			if occ.Class == "Manager" {
				return false, nil // the manager rule handles those
			}
			sal, _ := occ.Args[0].Numeric()
			mgrV, err := ctx.GetAttr(occ.Source, "mgr")
			if err != nil {
				return false, err
			}
			mgr, ok := mgrV.AsRef()
			if !ok || mgr.IsNil() {
				return false, nil
			}
			mSalV, err := ctx.GetAttr(mgr, "salary")
			if err != nil {
				return false, err
			}
			mSal, _ := mSalV.Numeric()
			return sal >= mSal, nil
		},
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			return ctx.Abort("adam: invalid salary (employee)")
		},
	}
	mgrRule := &adam.Rule{
		Name: "mgr-salary", ActiveClass: "Manager", ActiveMethod: "SetSalary",
		When: event.End, Enabled: true,
		Cond: func(ctx rule.ExecContext, occ event.Occurrence) (bool, error) {
			mSal, _ := occ.Args[0].Numeric()
			for _, e := range db.InstancesOf("Employee") {
				if e == occ.Source {
					continue
				}
				mv, err := ctx.GetAttr(e, "mgr")
				if err != nil {
					return false, err
				}
				if m, ok := mv.AsRef(); !ok || m != occ.Source {
					continue
				}
				sv, err := ctx.GetAttr(e, "salary")
				if err != nil {
					return false, err
				}
				s, _ := sv.Numeric()
				if s >= mSal {
					return true, nil
				}
			}
			return false, nil
		},
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			return ctx.Abort("adam: invalid salary (manager)")
		},
	}
	if err := sys.NewRule(empRule); err != nil {
		return 0, err
	}
	if err := sys.NewRule(mgrRule); err != nil {
		return 0, err
	}
	return 2, nil
}

// salaryWorkload drives the same update sequence against a prepared org and
// returns (allowed updates, blocked updates).
func salaryWorkload(db *core.Database, org *Org) (allowed, blocked int, err error) {
	try := func(target oid.OID, amount float64) error {
		e := db.Atomically(func(t *core.Tx) error {
			_, err := db.Send(t, target, "SetSalary", value.Float(amount))
			return err
		})
		if e == nil {
			allowed++
			return nil
		}
		if core.IsAbort(e) {
			blocked++
			return nil
		}
		return e
	}
	for _, e := range org.Employees {
		if err := try(e, 1500); err != nil { // below the 2000 manager salary: ok
			return allowed, blocked, err
		}
		if err := try(e, 2500); err != nil { // above: blocked
			return allowed, blocked, err
		}
	}
	for _, m := range org.Managers {
		if err := try(m, 3000); err != nil { // above all employees: ok
			return allowed, blocked, err
		}
		if err := try(m, 900); err != nil { // below employees at 1500: blocked
			return allowed, blocked, err
		}
	}
	return allowed, blocked, nil
}

// RunE1 reproduces §5.1: the Salary-check rule in Sentinel, Ode and ADAM.
// All three must block exactly the violating updates; they differ in how
// many rule artifacts the schema needs.
func RunE1() *Table {
	tbl := NewTable("E1  §5.1 Salary-check in three systems (10 employees, 2 managers, 24 updates)",
		"system", "rule artifacts", "allowed", "blocked", "checks run")

	// Sentinel.
	{
		db := openQuiet()
		if err := InstallOrgSchema(db); err != nil {
			panic(err)
		}
		org, err := BuildOrg(db, 2, 10)
		if err != nil {
			panic(err)
		}
		if err := SalaryCheckSentinel(db); err != nil {
			panic(err)
		}
		allowed, blocked, err := salaryWorkload(db, org)
		if err != nil {
			panic(err)
		}
		r := db.LookupRule("SalaryCheck")
		_, signalled, _ := r.Stats()
		tbl.Row("Sentinel", 1, allowed, blocked, signalled)
	}

	// Ode baseline.
	{
		db := openQuiet()
		if err := InstallOrgSchema(db); err != nil {
			panic(err)
		}
		org, err := BuildOrg(db, 2, 10)
		if err != nil {
			panic(err)
		}
		sys := ode.New(db)
		decls, err := SalaryCheckOde(db, sys)
		if err != nil {
			panic(err)
		}
		allowed, blocked, err := salaryWorkload(db, org)
		if err != nil {
			panic(err)
		}
		tbl.Row("Ode-style", decls, allowed, blocked, sys.Checks())
	}

	// ADAM baseline.
	{
		db := openQuiet()
		if err := InstallOrgSchema(db); err != nil {
			panic(err)
		}
		org, err := BuildOrg(db, 2, 10)
		if err != nil {
			panic(err)
		}
		sys := adam.New(db)
		objs, err := SalaryCheckAdam(db, sys)
		if err != nil {
			panic(err)
		}
		allowed, blocked, err := salaryWorkload(db, org)
		if err != nil {
			panic(err)
		}
		tbl.Row("ADAM-style", objs, allowed, blocked, sys.Checked())
	}
	return tbl
}

// RunE2 reproduces the §2.1 Purchase rule — an event spanning two objects
// of different classes (IBM's SetPrice AND DowJones' SetValue). Sentinel
// expresses it as one rule with two subscriptions; ADAM needs two rule
// objects plus hand-written join state in the application; the Ode shape
// (rules inside one class definition) cannot express it at all.
func RunE2() *Table {
	tbl := NewTable("E2  §2.1 Purchase rule (conjunction across classes)",
		"system", "rule artifacts", "app glue", "purchases fired", "expressible")

	buy := func(db *core.Database, ctx rule.ExecContext, parker oid.OID, ibm oid.OID) error {
		_, err := ctx.Send(parker, "Purchase", value.Ref(ibm), value.Int(10))
		return err
	}

	// Sentinel: one rule, conjunction event, two subscriptions.
	{
		db := openQuiet()
		if err := InstallMarketSchema(db); err != nil {
			panic(err)
		}
		m, err := BuildMarket(db, 1, 1)
		if err != nil {
			panic(err)
		}
		ibm, dj, parker := m.Stocks[0], m.DowJones, m.Portfolios[0]
		fired := 0
		err = db.Atomically(func(t *core.Tx) error {
			r, err := db.CreateRule(t, core.RuleSpec{
				Name: "Purchase",
				Event: event.And(
					event.Primitive(event.End, "Stock", "SetPrice"),
					event.Primitive(event.End, "FinancialInfo", "SetValue"),
				),
				Condition: func(ctx rule.ExecContext, det event.Detection) (bool, error) {
					pOcc, ok1 := det.OfEvent("Stock", "SetPrice")
					vOcc, ok2 := det.OfEvent("FinancialInfo", "SetValue")
					if !ok1 || !ok2 {
						return false, nil
					}
					price, _ := pOcc.Args[0].Numeric()
					chV, err := ctx.GetAttr(vOcc.Source, "change")
					if err != nil {
						return false, err
					}
					ch, _ := chV.Numeric()
					return price < 80 && ch < 3.4, nil
				},
				Action: func(ctx rule.ExecContext, det event.Detection) error {
					fired++
					return buy(db, ctx, parker, ibm)
				},
			})
			if err != nil {
				return err
			}
			if err := db.Subscribe(t, ibm, r.ID()); err != nil {
				return err
			}
			return db.Subscribe(t, dj, r.ID())
		})
		if err != nil {
			panic(err)
		}
		// Drive: price drops below 80, then the Dow ticks up mildly → buy.
		err = db.Atomically(func(t *core.Tx) error {
			if _, err := db.Send(t, ibm, "SetPrice", value.Float(75)); err != nil {
				return err
			}
			_, err := db.Send(t, dj, "SetValue", value.Float(10100))
			return err
		})
		if err != nil {
			panic(err)
		}
		tbl.Row("Sentinel", 1, "none", fired, "yes")
	}

	// ADAM: two rules + a hand-coded conjunction flag in the application.
	{
		db := openQuiet()
		if err := InstallMarketSchema(db); err != nil {
			panic(err)
		}
		m, err := BuildMarket(db, 1, 1)
		if err != nil {
			panic(err)
		}
		ibm, dj, parker := m.Stocks[0], m.DowJones, m.Portfolios[0]
		sys := adam.New(db)
		if err := db.Atomically(func(t *core.Tx) error {
			if err := sys.EnrollClass(t, "Stock"); err != nil {
				return err
			}
			return sys.EnrollClass(t, "FinancialInfo")
		}); err != nil {
			panic(err)
		}
		// The glue the application must maintain by hand.
		var priceOK, changeOK bool
		fired := 0
		fireIfBoth := func(ctx rule.ExecContext) error {
			if priceOK && changeOK {
				fired++
				priceOK, changeOK = false, false
				return buy(db, ctx, parker, ibm)
			}
			return nil
		}
		if err := sys.NewRule(&adam.Rule{
			Name: "purchase-price", ActiveClass: "Stock", ActiveMethod: "SetPrice",
			When: event.End, Enabled: true,
			Cond: func(ctx rule.ExecContext, occ event.Occurrence) (bool, error) {
				p, _ := occ.Args[0].Numeric()
				return p < 80, nil
			},
			Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
				priceOK = true
				return fireIfBoth(ctx)
			},
		}); err != nil {
			panic(err)
		}
		if err := sys.NewRule(&adam.Rule{
			Name: "purchase-change", ActiveClass: "FinancialInfo", ActiveMethod: "SetValue",
			When: event.End, Enabled: true,
			Cond: func(ctx rule.ExecContext, occ event.Occurrence) (bool, error) {
				chV, err := ctx.GetAttr(occ.Source, "change")
				if err != nil {
					return false, err
				}
				ch, _ := chV.Numeric()
				return ch < 3.4, nil
			},
			Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
				changeOK = true
				return fireIfBoth(ctx)
			},
		}); err != nil {
			panic(err)
		}
		if err := db.Atomically(func(t *core.Tx) error {
			if _, err := db.Send(t, ibm, "SetPrice", value.Float(75)); err != nil {
				return err
			}
			_, err := db.Send(t, dj, "SetValue", value.Float(10100))
			return err
		}); err != nil {
			panic(err)
		}
		tbl.Row("ADAM-style", 2, "manual conjunction flags", fired, "partially")
	}

	tbl.Row("Ode-style", "-", "-", 0, "no (rules live in one class)")
	return tbl
}

// RunC1 renders the §7 back-of-the-envelope comparison as a feature
// matrix, with the measured experiments that substantiate each line.
func RunC1() *Table {
	tbl := NewTable("C1  §7 Back-of-the-envelope comparison",
		"capability", "Sentinel", "Ode", "ADAM", "measured by")
	tbl.Row("rule specification at class-definition time", "yes", "yes", "no", "E1")
	tbl.Row("rule creation/deletion at runtime", "yes", "no (recompile)", "yes", "P4")
	tbl.Row("rules as first-class persistent objects", "yes", "no", "yes", "P7")
	tbl.Row("events as first-class objects", "yes", "no (expressions)", "yes", "P7")
	tbl.Row("composite events (and/or/seq...)", "yes", "within a class", "no", "P3")
	tbl.Row("events spanning objects of distinct classes", "yes", "no", "no", "E2")
	tbl.Row("subscription-scoped rule checking", "yes", "no", "no (centralized)", "P1")
	tbl.Row("instance-level rules without per-event filtering", "yes", "no", "no (disabled-for)", "P5")
	tbl.Row("class-level rules + inheritance", "yes (MRO)", "yes", "yes", "E1")
	tbl.Row("coupling modes", "3", "immediate", "immediate", "P6")
	tbl.Row("passive objects pay no overhead", "yes", "n/a", "n/a", "P2")
	return tbl
}
