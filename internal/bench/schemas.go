package bench

import (
	"fmt"

	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// InstallOrgSchema registers the Person/Employee/Manager hierarchy used by
// the paper's running examples (Figs. 8–13): Person is reactive with Marry
// as a bom event generator; Employee adds salary methods (eom generators);
// Manager extends Employee.
func InstallOrgSchema(db *core.Database) error {
	person := schema.NewClass("Person")
	person.Classification = schema.ReactiveClass
	person.Persistent = true
	person.Attr("name", value.TypeString)
	person.Attr("sex", value.TypeString)
	person.AddAttribute(&schema.Attribute{Name: "spouse", Type: value.TypeRef("Person"), Visibility: schema.Public})
	person.AddMethod(&schema.Method{
		Name:       "Marry",
		Params:     []schema.Param{{Name: "spouse", Type: value.TypeRef("Person")}},
		Visibility: schema.Public,
		EventGen:   schema.GenBegin, // Fig. 9: event begin Marry(Person* spouse)
		Body: func(ctx schema.CallContext) (value.Value, error) {
			if err := ctx.Set("spouse", ctx.Arg(0)); err != nil {
				return value.Nil, err
			}
			other, _ := ctx.Arg(0).AsRef()
			// Symmetric link (does not re-raise Marry on the other side to
			// keep Fig. 9 semantics simple).
			return value.Nil, ctx.SetOf(other, "spouse", value.Ref(ctx.Self()))
		},
	})
	if err := db.RegisterClass(person); err != nil {
		return err
	}

	employee := schema.NewClass("Employee", person)
	employee.Persistent = true
	employee.AddAttribute(&schema.Attribute{Name: "salary", Type: value.TypeFloat, Visibility: schema.Protected})
	employee.AddAttribute(&schema.Attribute{Name: "mgr", Type: value.TypeRef("Manager"), Visibility: schema.Public})
	employee.AddMethod(&schema.Method{
		Name:       "SetSalary",
		Params:     []schema.Param{{Name: "amount", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("salary", ctx.Arg(0))
		},
	})
	employee.AddMethod(&schema.Method{
		Name:       "ChangeIncome",
		Params:     []schema.Param{{Name: "amount", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd, // Fig. 10
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("salary", ctx.Arg(0))
		},
	})
	employee.AddMethod(&schema.Method{
		Name:       "Salary",
		Returns:    value.TypeFloat,
		Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return ctx.Get("salary")
		},
	})
	if err := db.RegisterClass(employee); err != nil {
		return err
	}

	manager := schema.NewClass("Manager", employee)
	manager.Persistent = true
	if err := db.RegisterClass(manager); err != nil {
		return err
	}
	return nil
}

// Org is a generated employee/manager population.
type Org struct {
	Managers  []oid.OID
	Employees []oid.OID
}

// BuildOrg creates nManagers managers and nEmployees employees, assigning
// each employee a manager round-robin. Managers start at salary 2000,
// employees at 1000.
func BuildOrg(db *core.Database, nManagers, nEmployees int) (*Org, error) {
	org := &Org{}
	err := db.Atomically(func(t *core.Tx) error {
		for i := 0; i < nManagers; i++ {
			id, err := db.NewObject(t, "Manager", map[string]value.Value{
				"name":   value.Str(fmt.Sprintf("mgr-%d", i)),
				"salary": value.Float(2000),
			})
			if err != nil {
				return err
			}
			org.Managers = append(org.Managers, id)
		}
		for i := 0; i < nEmployees; i++ {
			inits := map[string]value.Value{
				"name":   value.Str(fmt.Sprintf("emp-%d", i)),
				"salary": value.Float(1000),
			}
			if nManagers > 0 {
				inits["mgr"] = value.Ref(org.Managers[i%nManagers])
			}
			id, err := db.NewObject(t, "Employee", inits)
			if err != nil {
				return err
			}
			org.Employees = append(org.Employees, id)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return org, nil
}

// InstallMarketSchema registers the Stock/FinancialInfo/Portfolio classes
// of §2.1.
func InstallMarketSchema(db *core.Database) error {
	stock := schema.NewClass("Stock")
	stock.Classification = schema.ReactiveClass
	stock.Persistent = true
	stock.Attr("symbol", value.TypeString)
	stock.Attr("price", value.TypeFloat)
	stock.AddMethod(&schema.Method{
		Name:       "SetPrice",
		Params:     []schema.Param{{Name: "price", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("price", ctx.Arg(0))
		},
	})
	stock.AddMethod(&schema.Method{
		Name:       "GetPrice",
		Returns:    value.TypeFloat,
		Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return ctx.Get("price")
		},
	})
	if err := db.RegisterClass(stock); err != nil {
		return err
	}

	fin := schema.NewClass("FinancialInfo")
	fin.Classification = schema.ReactiveClass
	fin.Persistent = true
	fin.Attr("name", value.TypeString)
	fin.Attr("val", value.TypeFloat)
	fin.Attr("change", value.TypeFloat)
	fin.AddMethod(&schema.Method{
		Name:       "SetValue",
		Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			old, err := ctx.Get("val")
			if err != nil {
				return value.Nil, err
			}
			ov, _ := old.Numeric()
			nv, _ := ctx.Arg(0).Numeric()
			change := 0.0
			if ov != 0 {
				change = (nv - ov) / ov * 100
			}
			if err := ctx.Set("change", value.Float(change)); err != nil {
				return value.Nil, err
			}
			return value.Nil, ctx.Set("val", ctx.Arg(0))
		},
	})
	if err := db.RegisterClass(fin); err != nil {
		return err
	}

	pf := schema.NewClass("Portfolio")
	pf.Persistent = true
	pf.Attr("owner", value.TypeString)
	pf.Attr("holdings", value.TypeInt)
	pf.Attr("cash", value.TypeFloat)
	pf.AddMethod(&schema.Method{
		Name:       "Purchase",
		Params:     []schema.Param{{Name: "stock", Type: value.TypeRef("Stock")}, {Name: "qty", Type: value.TypeInt}},
		Visibility: schema.Public,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			st, _ := ctx.Arg(0).AsRef()
			priceV, err := ctx.Send(st, "GetPrice")
			if err != nil {
				return value.Nil, err
			}
			price, _ := priceV.Numeric()
			qty, _ := ctx.Arg(1).AsInt()
			cashV, err := ctx.Get("cash")
			if err != nil {
				return value.Nil, err
			}
			cash, _ := cashV.Numeric()
			cost := price * float64(qty)
			if cost > cash {
				return value.Nil, ctx.Abort(fmt.Sprintf("portfolio cannot afford %d shares at %.2f", qty, price))
			}
			hv, _ := ctx.Get("holdings")
			h, _ := hv.AsInt()
			if err := ctx.Set("holdings", value.Int(h+qty)); err != nil {
				return value.Nil, err
			}
			return value.Nil, ctx.Set("cash", value.Float(cash-cost))
		},
	})
	return db.RegisterClass(pf)
}

// Market is a generated stock/portfolio population.
type Market struct {
	Stocks     []oid.OID
	DowJones   oid.OID
	Portfolios []oid.OID
}

// BuildMarket creates nStocks stocks (at price 100), one DowJones
// FinancialInfo object, and nPortfolios portfolios with 1e6 cash.
func BuildMarket(db *core.Database, nStocks, nPortfolios int) (*Market, error) {
	m := &Market{}
	err := db.Atomically(func(t *core.Tx) error {
		for i := 0; i < nStocks; i++ {
			id, err := db.NewObject(t, "Stock", map[string]value.Value{
				"symbol": value.Str(fmt.Sprintf("STK%04d", i)),
				"price":  value.Float(100),
			})
			if err != nil {
				return err
			}
			m.Stocks = append(m.Stocks, id)
		}
		dj, err := db.NewObject(t, "FinancialInfo", map[string]value.Value{
			"name": value.Str("DowJones"),
			"val":  value.Float(10000),
		})
		if err != nil {
			return err
		}
		m.DowJones = dj
		for i := 0; i < nPortfolios; i++ {
			id, err := db.NewObject(t, "Portfolio", map[string]value.Value{
				"owner": value.Str(fmt.Sprintf("owner-%d", i)),
				"cash":  value.Float(1e6),
			})
			if err != nil {
				return err
			}
			m.Portfolios = append(m.Portfolios, id)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// InstallPatientSchema registers the patient-monitoring classes of the §2.1
// motivation: patients are defined (and instantiated) before anyone knows
// who will monitor them.
func InstallPatientSchema(db *core.Database) error {
	patient := schema.NewClass("Patient")
	patient.Classification = schema.ReactiveClass
	patient.Persistent = true
	patient.Attr("name", value.TypeString)
	patient.Attr("temperature", value.TypeFloat)
	patient.Attr("heartRate", value.TypeInt)
	patient.Attr("diagnosis", value.TypeString)
	patient.AddMethod(&schema.Method{
		Name:       "RecordVitals",
		Params:     []schema.Param{{Name: "temp", Type: value.TypeFloat}, {Name: "hr", Type: value.TypeInt}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			if err := ctx.Set("temperature", ctx.Arg(0)); err != nil {
				return value.Nil, err
			}
			return value.Nil, ctx.Set("heartRate", ctx.Arg(1))
		},
	})
	patient.AddMethod(&schema.Method{
		Name:       "Diagnose",
		Params:     []schema.Param{{Name: "dx", Type: value.TypeString}},
		Visibility: schema.Public,
		EventGen:   schema.GenEnd,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("diagnosis", ctx.Arg(0))
		},
	})
	return db.RegisterClass(patient)
}
