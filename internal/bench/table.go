// Package bench provides the experiment harness shared by the benchmark
// suite (bench_test.go) and the sentinel-bench binary: workload generators
// for the paper's motivating domains (employees/managers, stocks/
// portfolios, patients), shared Go-defined schemas, and a plain-text table
// printer that renders each experiment the way the paper's evaluation
// would.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders an aligned plain-text table.
type Table struct {
	Title   string
	Note    string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w2 := range widths {
		total += w2 + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var hb strings.Builder
	for i, h := range t.headers {
		fmt.Fprintf(&hb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(hb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		var rb strings.Builder
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&rb, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(rb.String(), " "))
	}
	if t.Note != "" {
		fmt.Fprintln(w, t.Note)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
