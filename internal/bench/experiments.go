package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"sentinel/internal/baseline/adam"
	"sentinel/internal/baseline/ode"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// openQuiet returns an in-memory database that swallows print() output.
func openQuiet() *core.Database {
	return core.MustOpen(core.Options{Output: io.Discard})
}

func noCond(rule.ExecContext, event.Detection) (bool, error) { return false, nil }

// timeOp runs fn n times and returns ns/op.
func timeOp(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// RunP1 measures the §3.5 claim: with subscriptions, "only those rules
// which have subscribed to a reactive object are checked", versus the
// centralized (ADAM-style) approach where every event consults the whole
// rule base. N total rules are spread over 100 stocks; one stock's price is
// updated repeatedly. Sentinel should stay flat in N (its cost follows
// N/100, the subscribers of that one object); the centralized engine should
// degrade linearly with N.
func RunP1(sizes []int, eventsPer int) *Table {
	if len(sizes) == 0 {
		sizes = []int{10, 100, 1000, 4000}
	}
	tbl := NewTable("P1  Subscription vs. centralized rule checking (ns/event)",
		"total rules N", "sentinel ns/ev", "adam ns/ev", "adam/sentinel")
	tbl.Note = "100 reactive stocks; rules spread round-robin; updates hit one stock."

	const stocks = 100
	for _, n := range sizes {
		// Sentinel.
		sdb := openQuiet()
		if err := InstallMarketSchema(sdb); err != nil {
			panic(err)
		}
		sm, err := BuildMarket(sdb, stocks, 0)
		if err != nil {
			panic(err)
		}
		err = sdb.Atomically(func(t *core.Tx) error {
			for i := 0; i < n; i++ {
				r, err := sdb.CreateRule(t, core.RuleSpec{
					Name:      fmt.Sprintf("watch-%d", i),
					EventSrc:  "end Stock::SetPrice(float p)",
					Condition: noCond,
				})
				if err != nil {
					return err
				}
				if err := sdb.Subscribe(t, sm.Stocks[i%stocks], r.ID()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		hot := sm.Stocks[0]
		var sNS float64
		if err := sdb.Atomically(func(t *core.Tx) error {
			sNS = timeOp(eventsPer, func(i int) {
				if _, err := sdb.Send(t, hot, "SetPrice", value.Float(float64(i))); err != nil {
					panic(err)
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}

		// ADAM.
		adb := openQuiet()
		if err := InstallMarketSchema(adb); err != nil {
			panic(err)
		}
		am, err := BuildMarket(adb, stocks, 0)
		if err != nil {
			panic(err)
		}
		asys := adam.New(adb)
		if err := adb.Atomically(func(t *core.Tx) error { return asys.EnrollClass(t, "Stock") }); err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			if err := asys.NewRule(&adam.Rule{
				Name:         fmt.Sprintf("watch-%d", i),
				ActiveClass:  "Stock",
				ActiveMethod: "SetPrice",
				When:         event.End,
				Enabled:      true,
				Cond:         func(rule.ExecContext, event.Occurrence) (bool, error) { return false, nil },
			}); err != nil {
				panic(err)
			}
		}
		ahot := am.Stocks[0]
		var aNS float64
		if err := adb.Atomically(func(t *core.Tx) error {
			aNS = timeOp(eventsPer, func(i int) {
				if _, err := adb.Send(t, ahot, "SetPrice", value.Float(float64(i))); err != nil {
					panic(err)
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}

		tbl.Row(n, sNS, aNS, aNS/sNS)
	}
	return tbl
}

// pointClass builds a Point-like class; reactive and eventGen control the
// classification and whether SetX is an event generator.
func pointClass(name string, reactive bool, gen schema.EventGen) *schema.Class {
	c := schema.NewClass(name)
	if reactive {
		c.Classification = schema.ReactiveClass
	}
	c.Attr("x", value.TypeFloat)
	c.AddMethod(&schema.Method{
		Name:       "SetX",
		Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
		Visibility: schema.Public,
		EventGen:   gen,
		Body: func(ctx schema.CallContext) (value.Value, error) {
			return value.Nil, ctx.Set("x", ctx.Arg(0))
		},
	})
	return c
}

// RunP2 measures the §3.2 claim that passive objects pay no event
// overhead, across the escalation passive → reactive-undeclared →
// reactive-declared-unsubscribed → 1 subscriber → 10 subscribers.
func RunP2(sends int) *Table {
	tbl := NewTable("P2  Method-send cost vs. reactivity (ns/send)",
		"configuration", "ns/send", "vs passive")
	db := openQuiet()
	for _, c := range []*schema.Class{
		pointClass("PassivePoint", false, schema.GenNone),
		pointClass("QuietPoint", true, schema.GenNone),
		pointClass("LoudPoint", true, schema.GenEnd),
	} {
		if err := db.RegisterClass(c); err != nil {
			panic(err)
		}
	}
	mk := func(class string) oid.OID {
		var id oid.OID
		if err := db.Atomically(func(t *core.Tx) error {
			var err error
			id, err = db.NewObject(t, class, nil)
			return err
		}); err != nil {
			panic(err)
		}
		return id
	}
	measure := func(id oid.OID) float64 {
		var ns float64
		if err := db.Atomically(func(t *core.Tx) error {
			ns = timeOp(sends, func(i int) {
				if _, err := db.Send(t, id, "SetX", value.Float(float64(i))); err != nil {
					panic(err)
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}
		return ns
	}

	passive := measure(mk("PassivePoint"))
	tbl.Row("passive class", passive, 1.0)
	tbl.Row("reactive class, method not in event interface", measure(mk("QuietPoint")), measure(mk("QuietPoint"))/passive)

	loud := mk("LoudPoint")
	tbl.Row("reactive, declared, 0 subscribers", measure(loud), measure(loud)/passive)

	addSubs := func(id oid.OID, from, to int) {
		if err := db.Atomically(func(t *core.Tx) error {
			for i := from; i < to; i++ {
				r, err := db.CreateRule(t, core.RuleSpec{
					Name:      fmt.Sprintf("p2-sub-%d-%d", id, i),
					EventSrc:  "end LoudPoint::SetX(float v)",
					Condition: noCond,
				})
				if err != nil {
					return err
				}
				if err := db.Subscribe(t, id, r.ID()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			panic(err)
		}
	}
	addSubs(loud, 0, 1)
	one := measure(loud)
	tbl.Row("reactive, declared, 1 subscriber (cond=false)", one, one/passive)
	addSubs(loud, 1, 10)
	ten := measure(loud)
	tbl.Row("reactive, declared, 10 subscribers (cond=false)", ten, ten/passive)
	return tbl
}

// RunP3 measures event-detection cost per operator and per operator-tree
// depth, feeding occurrences straight into detectors (§1 performance
// issue 3: event management cost).
func RunP3(feeds int) *Table {
	tbl := NewTable("P3  Composite-event detection cost (ns/occurrence fed)",
		"event definition", "ns/feed")
	prim := func(m string) *event.Expr { return event.Primitive(event.End, "C", m) }
	cases := []struct {
		name string
		e    *event.Expr
	}{
		{"primitive", prim("m0")},
		{"or(2)", event.Or(prim("m0"), prim("m1"))},
		{"and(2)", event.And(prim("m0"), prim("m1"))},
		{"seq(2)", event.Seq(prim("m0"), prim("m1"))},
		{"not", event.Not(prim("m0"), prim("m1"), prim("m2"))},
		{"any(2 of 4)", event.Any(2, prim("m0"), prim("m1"), prim("m2"), prim("m3"))},
	}
	// Left-deep And chains of growing depth.
	for _, depth := range []int{4, 8, 16} {
		e := prim("m0")
		for i := 1; i < depth; i++ {
			e = event.And(e, prim(fmt.Sprintf("m%d", i%4)))
		}
		cases = append(cases, struct {
			name string
			e    *event.Expr
		}{fmt.Sprintf("and-chain depth %d", depth), e})
	}
	for _, c := range cases {
		d := event.MustDetector(c.e, nil, event.ContextPaper)
		ns := timeOp(feeds, func(i int) {
			d.Feed(event.Occurrence{Class: "C", Method: fmt.Sprintf("m%d", i%4), When: event.End, Seq: uint64(i + 1)})
		})
		tbl.Row(c.name, ns)
	}
	return tbl
}

// RunP4 measures runtime rule addition/removal (§1 performance issue 1).
// Sentinel and ADAM add/remove a rule object; the Ode-style baseline must
// rebuild the class definition, touching every stored instance — the cost
// the paper predicts makes compile-time-only rules unsuitable.
func RunP4(instanceCounts []int) *Table {
	if len(instanceCounts) == 0 {
		instanceCounts = []int{100, 1000, 5000}
	}
	tbl := NewTable("P4  Cost of adding/removing one rule at runtime (µs/op)",
		"instances", "sentinel µs", "adam µs", "ode rebuild µs")
	for _, n := range instanceCounts {
		db := openQuiet()
		if err := InstallMarketSchema(db); err != nil {
			panic(err)
		}
		if _, err := BuildMarket(db, n, 0); err != nil {
			panic(err)
		}

		const reps = 20
		sNS := timeOp(reps, func(i int) {
			if err := db.Atomically(func(t *core.Tx) error {
				_, err := db.CreateRule(t, core.RuleSpec{
					Name:      fmt.Sprintf("p4-%d", i),
					EventSrc:  "end Stock::SetPrice(float p)",
					Condition: noCond,
				})
				return err
			}); err != nil {
				panic(err)
			}
			if err := db.Atomically(func(t *core.Tx) error {
				return db.DeleteRule(t, fmt.Sprintf("p4-%d", i))
			}); err != nil {
				panic(err)
			}
		})

		asys := adam.New(db)
		aNS := timeOp(reps, func(i int) {
			if err := asys.NewRule(&adam.Rule{
				Name: fmt.Sprintf("p4a-%d", i), ActiveClass: "Stock",
				ActiveMethod: "SetPrice", When: event.End, Enabled: true,
			}); err != nil {
				panic(err)
			}
			if err := asys.DeleteRule(fmt.Sprintf("p4a-%d", i)); err != nil {
				panic(err)
			}
		})

		osys := ode.New(db)
		section := func(i int) ode.ClassRules {
			return ode.ClassRules{
				Class: "Stock",
				Constraints: []ode.Constraint{{
					Name:     fmt.Sprintf("p4o-%d", i),
					Severity: ode.Soft,
					Pred:     func(rule.ExecContext, oid.OID) (bool, error) { return true, nil },
				}},
			}
		}
		if err := db.Atomically(func(t *core.Tx) error { return osys.EnrollClass(t, section(0)) }); err != nil {
			panic(err)
		}
		oNS := timeOp(5, func(i int) {
			if err := db.Atomically(func(t *core.Tx) error {
				return osys.RebuildClass(t, section(i+1))
			}); err != nil {
				panic(err)
			}
		})

		tbl.Row(n, sNS/1e3, aNS/1e3, oNS/1e3)
	}
	return tbl
}

// RunP5 measures class-level vs instance-level rule association (§1
// performance issue 2): setup cost to cover N instances and per-event
// dispatch cost afterwards.
func RunP5(instanceCounts []int, eventsPer int) *Table {
	if len(instanceCounts) == 0 {
		instanceCounts = []int{100, 1000, 5000}
	}
	tbl := NewTable("P5  Class-level vs instance-level rule association",
		"instances", "class setup µs", "inst setup µs", "class ns/ev", "inst ns/ev")
	for _, n := range instanceCounts {
		// Class-level.
		cdb := openQuiet()
		if err := InstallMarketSchema(cdb); err != nil {
			panic(err)
		}
		cm, err := BuildMarket(cdb, n, 0)
		if err != nil {
			panic(err)
		}
		cSetup := timeOp(1, func(int) {
			if err := cdb.Atomically(func(t *core.Tx) error {
				_, err := cdb.CreateRule(t, core.RuleSpec{
					Name: "p5-class", EventSrc: "end Stock::SetPrice(float p)",
					Condition: noCond, ClassLevel: "Stock",
				})
				return err
			}); err != nil {
				panic(err)
			}
		})
		var cNS float64
		if err := cdb.Atomically(func(t *core.Tx) error {
			cNS = timeOp(eventsPer, func(i int) {
				if _, err := cdb.Send(t, cm.Stocks[i%n], "SetPrice", value.Float(1)); err != nil {
					panic(err)
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}

		// Instance-level: one rule subscribed to every instance.
		idb := openQuiet()
		if err := InstallMarketSchema(idb); err != nil {
			panic(err)
		}
		im, err := BuildMarket(idb, n, 0)
		if err != nil {
			panic(err)
		}
		iSetup := timeOp(1, func(int) {
			if err := idb.Atomically(func(t *core.Tx) error {
				r, err := idb.CreateRule(t, core.RuleSpec{
					Name: "p5-inst", EventSrc: "end Stock::SetPrice(float p)",
					Condition: noCond,
				})
				if err != nil {
					return err
				}
				for _, s := range im.Stocks {
					if err := idb.Subscribe(t, s, r.ID()); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				panic(err)
			}
		})
		var iNS float64
		if err := idb.Atomically(func(t *core.Tx) error {
			iNS = timeOp(eventsPer, func(i int) {
				if _, err := idb.Send(t, im.Stocks[i%n], "SetPrice", value.Float(1)); err != nil {
					panic(err)
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}

		tbl.Row(n, cSetup/1e3, iSetup/1e3, cNS, iNS)
	}
	return tbl
}

// RunP6 measures the three coupling modes (§4.4): transaction latency with
// the rule inline (immediate), at commit (deferred), and in a separate
// post-commit transaction (detached), plus where the action work lands.
func RunP6(sendsPerTx, txs int) *Table {
	tbl := NewTable("P6  Coupling modes (µs/transaction, action placement)",
		"coupling", "µs/tx", "actions in-tx", "actions post-commit")
	for _, mode := range []string{"immediate", "deferred", "detached"} {
		db := openQuiet()
		if err := InstallMarketSchema(db); err != nil {
			panic(err)
		}
		m, err := BuildMarket(db, 1, 0)
		if err != nil {
			panic(err)
		}
		inTx, postTx := 0, 0
		var curTx *core.Tx
		if err := db.Atomically(func(t *core.Tx) error {
			r, err := db.CreateRule(t, core.RuleSpec{
				Name:     "p6",
				EventSrc: "end Stock::SetPrice(float p)",
				Action: func(ctx rule.ExecContext, det event.Detection) error {
					if curTx != nil && curTx.Active() {
						inTx++
					} else {
						postTx++
					}
					return nil
				},
				Coupling: mode,
			})
			if err != nil {
				return err
			}
			return db.Subscribe(t, m.Stocks[0], r.ID())
		}); err != nil {
			panic(err)
		}

		ns := timeOp(txs, func(i int) {
			t := db.Begin()
			curTx = t
			for j := 0; j < sendsPerTx; j++ {
				if _, err := db.Send(t, m.Stocks[0], "SetPrice", value.Float(float64(j))); err != nil {
					panic(err)
				}
			}
			if err := db.Commit(t); err != nil {
				panic(err)
			}
			curTx = nil
		})
		tbl.Row(mode, ns/1e3, inTx, postTx)
	}
	return tbl
}

// RunP7 measures first-class persistence: clean reopen vs crash recovery
// as the database grows (rules, events, subscriptions and objects all come
// back; §3.3/§3.4).
func RunP7(objectCounts []int) *Table {
	if len(objectCounts) == 0 {
		objectCounts = []int{100, 1000, 5000}
	}
	tbl := NewTable("P7  Reopen vs crash recovery (ms)",
		"objects", "clean reopen ms", "crash recovery ms", "wal KiB replayed")
	for _, n := range objectCounts {
		dir, err := os.MkdirTemp("", "sentinel-p7-*")
		if err != nil {
			panic(err)
		}
		build := func() {
			db := core.MustOpen(core.Options{Dir: dir, SyncOnCommit: false, Output: io.Discard})
			if err := InstallMarketSchema(db); err != nil {
				panic(err)
			}
			m, err := BuildMarket(db, n, 0)
			if err != nil {
				panic(err)
			}
			if err := db.Atomically(func(t *core.Tx) error {
				r, err := db.CreateRule(t, core.RuleSpec{
					Name: "p7", EventSrc: "end Stock::SetPrice(float price)", CondSrc: "price > 0", ActionSrc: `print("hi")`,
				})
				if err != nil {
					return err
				}
				return db.Subscribe(t, m.Stocks[0], r.ID())
			}); err != nil {
				panic(err)
			}
			if err := db.Close(); err != nil {
				panic(err)
			}
		}
		build()

		schemaOpt := func(db *core.Database) error { return InstallMarketSchema(db) }

		// Clean reopen (heap + index are current; WAL is one checkpoint).
		start := time.Now()
		db2, err := core.Open(core.Options{Dir: dir, Schema: schemaOpt, Output: io.Discard})
		if err != nil {
			panic(err)
		}
		cleanMS := float64(time.Since(start).Microseconds()) / 1e3

		// Dirty the database and crash.
		if err := db2.Atomically(func(t *core.Tx) error {
			for _, id := range db2.InstancesOf("Stock") {
				if _, err := db2.Send(t, id, "SetPrice", value.Float(42)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			panic(err)
		}
		walKB := float64(db2.WALSize()) / 1024
		if err := db2.CloseAbrupt(); err != nil {
			panic(err)
		}

		start = time.Now()
		db3, err := core.Open(core.Options{Dir: dir, Schema: schemaOpt, Output: io.Discard})
		if err != nil {
			panic(err)
		}
		crashMS := float64(time.Since(start).Microseconds()) / 1e3
		db3.Close()
		os.RemoveAll(dir)

		tbl.Row(n, cleanMS, crashMS, walKB)
	}
	return tbl
}

// RunP8 measures event-interface selectivity (§4.5 fn. 7): a class with 10
// methods, k of which are declared event generators; the workload calls all
// methods uniformly with one subscribed no-op rule.
func RunP8(sends int) *Table {
	tbl := NewTable("P8  Event-interface selectivity (ns/send, 10 methods, k generators)",
		"k declared", "ns/send")
	for _, k := range []int{0, 2, 5, 10} {
		db := openQuiet()
		cls := schema.NewClass(fmt.Sprintf("Sel%d", k))
		cls.Classification = schema.ReactiveClass
		cls.Attr("x", value.TypeFloat)
		for mi := 0; mi < 10; mi++ {
			gen := schema.GenNone
			if mi < k {
				gen = schema.GenEnd
			}
			cls.AddMethod(&schema.Method{
				Name:       fmt.Sprintf("M%d", mi),
				Params:     []schema.Param{{Name: "v", Type: value.TypeFloat}},
				Visibility: schema.Public,
				EventGen:   gen,
				Body: func(ctx schema.CallContext) (value.Value, error) {
					return value.Nil, ctx.Set("x", ctx.Arg(0))
				},
			})
		}
		if err := db.RegisterClass(cls); err != nil {
			panic(err)
		}
		var id oid.OID
		if err := db.Atomically(func(t *core.Tx) error {
			var err error
			id, err = db.NewObject(t, cls.Name, nil)
			if err != nil {
				return err
			}
			if k > 0 {
				ev := event.Primitive(event.End, cls.Name, "M0")
				for mi := 1; mi < k; mi++ {
					ev = event.Or(ev, event.Primitive(event.End, cls.Name, fmt.Sprintf("M%d", mi)))
				}
				r, err := db.CreateRule(t, core.RuleSpec{Name: "p8", Event: ev, Condition: noCond})
				if err != nil {
					return err
				}
				return db.Subscribe(t, id, r.ID())
			}
			return nil
		}); err != nil {
			panic(err)
		}
		var ns float64
		if err := db.Atomically(func(t *core.Tx) error {
			ns = timeOp(sends, func(i int) {
				if _, err := db.Send(t, id, fmt.Sprintf("M%d", i%10), value.Float(1)); err != nil {
					panic(err)
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}
		tbl.Row(k, ns)
	}
	return tbl
}

// RunAll executes every experiment and writes the tables to w.
func RunAll(w io.Writer) {
	fmt.Fprintln(w, "Sentinel reproduction — experiment suite")
	fmt.Fprintln(w, "========================================")
	fmt.Fprintln(w)
	RunE1().Fprint(w)
	RunE2().Fprint(w)
	RunP1(nil, 2000).Fprint(w)
	RunP2(20000).Fprint(w)
	RunP3(200000).Fprint(w)
	RunP4(nil).Fprint(w)
	RunP5(nil, 2000).Fprint(w)
	RunP6(100, 50).Fprint(w)
	RunP7(nil).Fprint(w)
	RunP8(20000).Fprint(w)
	RunP9(nil, 200).Fprint(w)
	RunP10(nil, 100).Fprint(w)
	RunC1().Fprint(w)
}

// RunP9 measures secondary-index lookups vs scans as the population grows —
// derived access paths maintained reactively by the system (§1's "unifying
// paradigm" framing).
func RunP9(sizes []int, lookups int) *Table {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 10000}
	}
	tbl := NewTable("P9  Secondary index vs scan (ns/equality lookup)",
		"objects", "scan ns", "indexed ns", "speedup")
	for _, n := range sizes {
		db := openQuiet()
		if err := InstallMarketSchema(db); err != nil {
			panic(err)
		}
		if _, err := BuildMarket(db, n, 0); err != nil {
			panic(err)
		}
		probe := value.Str(fmt.Sprintf("STK%04d", n/2))
		var scanNS float64
		if err := db.Atomically(func(t *core.Tx) error {
			scanNS = timeOp(lookups, func(int) {
				ids, _, err := db.LookupByAttr(t, "Stock", "symbol", probe)
				if err != nil || len(ids) != 1 {
					panic(fmt.Sprintf("scan lookup: %v %v", ids, err))
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}
		if err := db.Atomically(func(t *core.Tx) error {
			_, err := db.CreateIndex(t, "Stock", "symbol")
			return err
		}); err != nil {
			panic(err)
		}
		var idxNS float64
		if err := db.Atomically(func(t *core.Tx) error {
			idxNS = timeOp(lookups, func(int) {
				ids, indexed, err := db.LookupByAttr(t, "Stock", "symbol", probe)
				if err != nil || !indexed || len(ids) != 1 {
					panic(fmt.Sprintf("indexed lookup: %v %v", ids, err))
				}
			})
			return nil
		}); err != nil {
			panic(err)
		}
		tbl.Row(n, scanNS, idxNS, scanNS/idxNS)
	}
	return tbl
}

// RunP10 measures durable (fsync-per-commit) throughput as concurrency
// grows: group commit lets concurrent committers share fsyncs, so
// aggregate commits/sec should scale well past a single writer's fsync
// rate.
func RunP10(workerCounts []int, commitsPerWorker int) *Table {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	tbl := NewTable("P10 Durable commit throughput (group commit, SyncOnCommit=true)",
		"workers", "commits/sec", "vs 1 worker")
	var base float64
	for _, workers := range workerCounts {
		dir, err := os.MkdirTemp("", "sentinel-p10-*")
		if err != nil {
			panic(err)
		}
		db, err := core.Open(core.Options{Dir: dir, SyncOnCommit: true, Output: io.Discard,
			Schema: func(db *core.Database) error { return InstallMarketSchema(db) }})
		if err != nil {
			panic(err)
		}
		m, err := BuildMarket(db, workers, 0)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < commitsPerWorker; i++ {
					if err := db.Atomically(func(t *core.Tx) error {
						_, err := db.Send(t, m.Stocks[w], "SetPrice", value.Float(float64(i)))
						return err
					}); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		rate := float64(workers*commitsPerWorker) / elapsed
		db.Close()
		os.RemoveAll(dir)
		if base == 0 {
			base = rate
		}
		tbl.Row(workers, rate, rate/base)
	}
	return tbl
}
