// Package rule implements ECA rules as first-class notifiable objects
// (paper §3.4, §4.4): a rule has identity, an event definition, a condition
// and an action, a coupling mode, a priority, and enable/disable state.
// Rules receive primitive-event occurrences from the reactive objects they
// subscribe to, run them through their local event detector, and — when the
// event is signaled — are scheduled for condition evaluation and action
// execution by the core runtime.
package rule

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// Coupling is the rule's coupling mode (§4.4): the transactional
// relationship between the triggering transaction and the rule's
// condition/action evaluation.
type Coupling uint8

const (
	// Immediate: condition and action run synchronously at the event
	// signal point, inside the triggering transaction.
	Immediate Coupling = iota
	// Deferred: condition and action run at the end of the triggering
	// transaction, just before commit, inside it.
	Deferred
	// Detached: condition and action run in a separate transaction after
	// the triggering transaction commits.
	Detached
)

// String returns "immediate", "deferred" or "detached".
func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "immediate"
	case Deferred:
		return "deferred"
	case Detached:
		return "detached"
	default:
		return fmt.Sprintf("coupling(%d)", uint8(c))
	}
}

// ParseCoupling parses a coupling-mode name ("" means immediate).
func ParseCoupling(s string) (Coupling, error) {
	switch s {
	case "", "immediate":
		return Immediate, nil
	case "deferred":
		return Deferred, nil
	case "detached":
		return Detached, nil
	default:
		return Immediate, fmt.Errorf("rule: unknown coupling mode %q", s)
	}
}

// ExecContext is the environment conditions and actions run in. The core
// runtime implements it; the methods operate within the transaction implied
// by the rule's coupling mode.
type ExecContext interface {
	// GetAttr reads an attribute of an object (rules run with system
	// visibility: they are part of the behaviour of the objects they
	// monitor).
	GetAttr(obj oid.OID, attr string) (value.Value, error)
	// SetAttr writes an attribute of an object.
	SetAttr(obj oid.OID, attr string, v value.Value) error
	// Send invokes a public method (events fire as usual; cascaded rule
	// triggering is depth-limited by the runtime).
	Send(obj oid.OID, method string, args ...value.Value) (value.Value, error)
	// New creates an object of the named class.
	New(class string, inits map[string]value.Value) (oid.OID, error)
	// LookupName resolves a database name binding ("IBM", "Parker") to an
	// OID.
	LookupName(name string) (oid.OID, bool)
	// Abort returns an error that aborts the enclosing transaction when
	// propagated from the condition or action (Fig. 9's `A: abort`).
	Abort(reason string) error
	// Depth returns the current rule-cascade depth (1 for a rule triggered
	// directly by application activity).
	Depth() int
}

// Condition decides whether the action should run. The detection carries
// the constituent occurrences and their parameters.
type Condition func(ctx ExecContext, det event.Detection) (bool, error)

// Action is the rule's effect.
type Action func(ctx ExecContext, det event.Detection) error

// CondTrue is the always-true condition.
func CondTrue(ExecContext, event.Detection) (bool, error) { return true, nil }

// Rule is a first-class ECA rule object.
type Rule struct {
	id   oid.OID
	name string

	// Event is the rule's (first-class) event definition.
	Event *event.Expr
	// Context is the parameter context its detector uses.
	Context event.Context

	Condition Condition
	Action    Action

	Coupling Coupling
	Priority int

	// CondSrc/ActSrc record the persistent form of the condition and
	// action: SentinelQL source, or "go:name" referencing the registered
	// function registry. Empty for unpersistable closures (such rules are
	// transient, like C++ rules holding raw PMFs).
	CondSrc, ActSrc string
	// CondClosure/ActClosure mark behaviour supplied as raw Go closures
	// with no persistent source — not dumpable or recoverable.
	CondClosure, ActClosure bool

	// ClassLevel, when non-empty, marks this as a class-level rule of the
	// named class: it applies to every instance, current and future
	// (§4.7). Instance-level rules leave it empty and subscribe
	// explicitly.
	ClassLevel string

	// TxScoped limits composite-event detection to a single transaction:
	// the rule's detector resets when any transaction that fed it ends, so
	// an event like "deposit seq withdraw" only matches within one
	// transaction. Default (false) lets detection span transactions, as in
	// the paper.
	TxScoped bool

	enabled atomic.Bool

	// detMu serializes access to the detector's recognition graph, which
	// is single-writer by design ("each consumer owns its detector").
	// Concurrent transactions may notify the same rule — class-level rules
	// especially — so the rule itself enforces the invariant rather than
	// trusting every caller to.
	detMu    sync.Mutex
	detector *event.Detector

	// Stats.
	received  atomic.Uint64 // occurrences notified
	signalled atomic.Uint64 // event detections
	fired     atomic.Uint64 // actions executed

	// Execution timing, fed by the runtime's (sampled) firing timer.
	execCnt atomic.Uint64 // timed executions
	execNs  atomic.Uint64 // summed duration of timed executions
	execMax atomic.Uint64 // slowest timed execution
}

// New constructs a rule. The detector is compiled on first Notify or via
// Compile.
func New(name string, ev *event.Expr, cond Condition, act Action, coupling Coupling) *Rule {
	r := &Rule{name: name, Event: ev, Condition: cond, Action: act, Coupling: coupling}
	r.enabled.Store(true)
	return r
}

// ID returns the rule's object identity (oid.Nil until cataloged).
func (r *Rule) ID() oid.OID { return r.id }

// SetID assigns the catalog identity.
func (r *Rule) SetID(id oid.OID) { r.id = id }

// Name returns the rule name.
func (r *Rule) Name() string { return r.name }

// Enabled reports whether the rule reacts to events. "When a rule is
// enabled it receives and records propagated primitive events" (§4.4).
func (r *Rule) Enabled() bool { return r.enabled.Load() }

// Enable turns the rule on.
func (r *Rule) Enable() { r.enabled.Store(true) }

// Disable turns the rule off and clears its detection state.
func (r *Rule) Disable() {
	r.enabled.Store(false)
	if r.detector != nil {
		r.detMu.Lock()
		r.detector.Reset()
		r.detMu.Unlock()
	}
}

// Compile builds the rule's local event detector against the given class
// hierarchy. It must be called (by the runtime) before Notify.
func (r *Rule) Compile(h event.Hierarchy) error {
	if r.Event == nil {
		return fmt.Errorf("rule %s: no event definition", r.name)
	}
	d, err := event.NewDetector(r.Event, h, r.Context)
	if err != nil {
		return fmt.Errorf("rule %s: %w", r.name, err)
	}
	r.detector = d
	return nil
}

// Compiled reports whether the detector exists.
func (r *Rule) Compiled() bool { return r.detector != nil }

// Notify delivers one primitive-event occurrence to the rule (the
// Notifiable role, §4.2): the rule records it into its local detector and
// returns any completed detections of its event. Disabled rules ignore
// notifications. Notify is safe for concurrent use: the detector graph is
// fed under the rule's own lock.
func (r *Rule) Notify(o event.Occurrence) []event.Detection {
	if !r.enabled.Load() || r.detector == nil {
		return nil
	}
	r.received.Add(1)
	r.detMu.Lock()
	dets := r.detector.Feed(o)
	r.detMu.Unlock()
	if len(dets) > 0 {
		r.signalled.Add(uint64(len(dets)))
	}
	return dets
}

// ResetDetection clears the rule's event-recognition state (e.g. at
// transaction boundaries for transaction-scoped events; the runtime
// decides).
func (r *Rule) ResetDetection() {
	if r.detector != nil {
		r.detMu.Lock()
		r.detector.Reset()
		r.detMu.Unlock()
	}
}

// CountFired increments and returns the fired counter; the runtime calls it
// when the action runs.
func (r *Rule) CountFired() uint64 { return r.fired.Add(1) }

// Stats returns (occurrences received, events signalled, actions fired).
func (r *Rule) Stats() (received, signalled, fired uint64) {
	return r.received.Load(), r.signalled.Load(), r.fired.Load()
}

// RecordExec folds one timed firing (condition + action) into the rule's
// execution-time stats. The runtime samples firings, so these cover a
// subset of executions unless full timing is forced (tracer or slow-rule
// threshold).
func (r *Rule) RecordExec(d time.Duration) {
	ns := uint64(max(d, 0))
	r.execCnt.Add(1)
	r.execNs.Add(ns)
	for {
		cur := r.execMax.Load()
		if ns <= cur || r.execMax.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ExecStats returns the timed-execution count, total and maximum duration.
func (r *Rule) ExecStats() (timed uint64, total, max time.Duration) {
	return r.execCnt.Load(), time.Duration(r.execNs.Load()), time.Duration(r.execMax.Load())
}

// String renders the rule header.
func (r *Rule) String() string {
	return fmt.Sprintf("rule %s [%s, prio %d] on %s", r.name, r.Coupling, r.Priority, r.Event)
}
