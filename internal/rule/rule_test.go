package rule

import (
	"testing"

	"sentinel/internal/event"
	"sentinel/internal/value"
)

func prim(m string) *event.Expr { return event.Primitive(event.End, "C", m) }

func occ(m string, seq uint64) event.Occurrence {
	return event.Occurrence{Source: 1, Class: "C", Method: m, When: event.End, Seq: seq}
}

func TestCouplingParse(t *testing.T) {
	cases := map[string]Coupling{
		"": Immediate, "immediate": Immediate, "deferred": Deferred, "detached": Detached,
	}
	for in, want := range cases {
		got, err := ParseCoupling(in)
		if err != nil || got != want {
			t.Errorf("ParseCoupling(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseCoupling("sometime"); err == nil {
		t.Error("bad coupling accepted")
	}
	if Immediate.String() != "immediate" || Deferred.String() != "deferred" || Detached.String() != "detached" {
		t.Error("Coupling.String wrong")
	}
}

func TestRuleLifecycle(t *testing.T) {
	r := New("R", prim("a"), CondTrue, nil, Immediate)
	if !r.Enabled() {
		t.Fatal("fresh rule disabled")
	}
	if r.Compiled() {
		t.Fatal("compiled before Compile")
	}
	if got := r.Notify(occ("a", 1)); got != nil {
		t.Fatal("uncompiled rule detected something")
	}
	if err := r.Compile(nil); err != nil {
		t.Fatal(err)
	}
	if dets := r.Notify(occ("a", 2)); len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	r.Disable()
	if dets := r.Notify(occ("a", 3)); len(dets) != 0 {
		t.Fatal("disabled rule still detects")
	}
	r.Enable()
	if dets := r.Notify(occ("a", 4)); len(dets) != 1 {
		t.Fatal("re-enabled rule does not detect")
	}
	recv, sig, fired := r.Stats()
	if recv != 2 || sig != 2 || fired != 0 {
		t.Fatalf("stats = %d/%d/%d", recv, sig, fired)
	}
	r.CountFired()
	if _, _, fired := r.Stats(); fired != 1 {
		t.Fatal("CountFired not recorded")
	}
}

func TestDisableClearsDetectionState(t *testing.T) {
	r := New("R", event.Seq(prim("a"), prim("b")), CondTrue, nil, Immediate)
	r.Compile(nil)
	r.Notify(occ("a", 1)) // half the sequence
	r.Disable()
	r.Enable()
	if dets := r.Notify(occ("b", 2)); len(dets) != 0 {
		t.Fatal("detection state survived disable")
	}
}

func TestCompileErrors(t *testing.T) {
	r := New("R", nil, CondTrue, nil, Immediate)
	if err := r.Compile(nil); err == nil {
		t.Fatal("compile without event succeeded")
	}
	r2 := New("R2", &event.Expr{Op: event.OpAnd}, CondTrue, nil, Immediate)
	if err := r2.Compile(nil); err == nil {
		t.Fatal("compile of invalid event succeeded")
	}
}

func det(seq uint64) event.Detection {
	return event.Detection{Constituents: []event.Occurrence{{Seq: seq, Args: []value.Value{value.Int(int64(seq))}}}}
}

func TestAgendaPriorityOrdering(t *testing.T) {
	a := NewAgenda(ByPriority{})
	lo := New("lo", prim("a"), CondTrue, nil, Immediate)
	lo.Priority = 1
	hi := New("hi", prim("a"), CondTrue, nil, Immediate)
	hi.Priority = 10
	mid := New("mid", prim("a"), CondTrue, nil, Immediate)
	mid.Priority = 5

	a.Add(lo, det(1))
	a.Add(hi, det(2))
	a.Add(mid, det(3))
	got := a.Drain()
	if len(got) != 3 || got[0].Rule != hi || got[1].Rule != mid || got[2].Rule != lo {
		t.Fatalf("priority order wrong: %v,%v,%v", got[0].Rule.Name(), got[1].Rule.Name(), got[2].Rule.Name())
	}
	if a.Len() != 0 {
		t.Fatal("agenda not drained")
	}
}

func TestAgendaPriorityTiesFIFO(t *testing.T) {
	a := NewAgenda(ByPriority{})
	r1 := New("r1", prim("a"), CondTrue, nil, Immediate)
	r2 := New("r2", prim("a"), CondTrue, nil, Immediate)
	a.Add(r1, det(1))
	a.Add(r2, det(2))
	got := a.Drain()
	if got[0].Rule != r1 || got[1].Rule != r2 {
		t.Fatal("equal priorities should preserve arrival order")
	}
}

func TestAgendaFIFOAndLIFO(t *testing.T) {
	r1 := New("r1", prim("a"), CondTrue, nil, Immediate)
	r1.Priority = 1
	r2 := New("r2", prim("a"), CondTrue, nil, Immediate)
	r2.Priority = 99

	fifo := NewAgenda(FIFO{})
	fifo.Add(r2, det(1))
	fifo.Add(r1, det(2))
	got := fifo.Drain()
	if got[0].Rule != r2 || got[1].Rule != r1 {
		t.Fatal("FIFO ignores arrival order")
	}

	lifo := NewAgenda(LIFO{})
	lifo.Add(r2, det(1))
	lifo.Add(r1, det(2))
	got = lifo.Drain()
	if got[0].Rule != r1 || got[1].Rule != r2 {
		t.Fatal("LIFO ignores arrival order")
	}
}

func TestAgendaClear(t *testing.T) {
	a := NewAgenda(nil)
	a.Add(New("r", prim("a"), CondTrue, nil, Immediate), det(1))
	a.Clear()
	if a.Len() != 0 || a.Drain() != nil {
		t.Fatal("Clear left firings behind")
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]string{"": "priority", "priority": "priority", "fifo": "fifo", "lifo": "lifo"} {
		s, err := ParseStrategy(name)
		if err != nil || s.Name() != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ParseStrategy("random"); err == nil {
		t.Error("bad strategy accepted")
	}
}

func TestRuleString(t *testing.T) {
	r := New("Watch", prim("a"), CondTrue, nil, Deferred)
	r.Priority = 3
	s := r.String()
	if s != "rule Watch [deferred, prio 3] on end C::a" {
		t.Errorf("String = %q", s)
	}
}
