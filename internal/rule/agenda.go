package rule

import (
	"fmt"
	"sort"

	"sentinel/internal/event"
	"sentinel/internal/oid"
)

// Firing is a triggered rule awaiting (or undergoing) condition evaluation
// and action execution.
type Firing struct {
	Rule      *Rule
	Detection event.Detection
	// Seq is the arrival order of the firing on its agenda, used by FIFO
	// and LIFO strategies and as the stable tie-breaker.
	Seq uint64

	// Subscriber is the object whose event completed the detection, and
	// WriteSet is the scheduling transaction's write set at the moment the
	// firing was scheduled. Both are recorded for detached firings only:
	// the conflict-aware executor pool keys on them to decide which
	// firings may run in parallel (disjoint keys) and which must retain
	// strategy order (shared keys). Immediate and deferred firings run
	// inside the scheduling transaction and leave them zero.
	Subscriber oid.OID
	WriteSet   []oid.OID
}

// Strategy is a pluggable conflict-resolution policy: it orders a set of
// simultaneously pending firings. Choosing a different strategy requires no
// application changes (§3 design goal: "incorporation of new features (for
// example, providing a new conflict resolution strategy) without
// modifications to application code").
type Strategy interface {
	Name() string
	// Order sorts fs in execution order, in place.
	Order(fs []Firing)
}

// ByPriority executes higher Priority first; ties break FIFO.
type ByPriority struct{}

// Name returns "priority".
func (ByPriority) Name() string { return "priority" }

// Order sorts by descending priority, then ascending arrival.
func (ByPriority) Order(fs []Firing) {
	if len(fs) < 2 {
		return
	}
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Rule.Priority != fs[j].Rule.Priority {
			return fs[i].Rule.Priority > fs[j].Rule.Priority
		}
		return fs[i].Seq < fs[j].Seq
	})
}

// FIFO executes in arrival order regardless of priority.
type FIFO struct{}

// Name returns "fifo".
func (FIFO) Name() string { return "fifo" }

// Order sorts by ascending arrival.
func (FIFO) Order(fs []Firing) {
	if len(fs) < 2 {
		return
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Seq < fs[j].Seq })
}

// LIFO executes most recently triggered first.
type LIFO struct{}

// Name returns "lifo".
func (LIFO) Name() string { return "lifo" }

// Order sorts by descending arrival.
func (LIFO) Order(fs []Firing) {
	if len(fs) < 2 {
		return
	}
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Seq > fs[j].Seq })
}

// ParseStrategy resolves a strategy by name ("" means priority).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "priority":
		return ByPriority{}, nil
	case "fifo":
		return FIFO{}, nil
	case "lifo":
		return LIFO{}, nil
	default:
		return nil, fmt.Errorf("rule: unknown conflict-resolution strategy %q", name)
	}
}

// Agenda accumulates pending firings (one per coupling-mode queue in the
// runtime) and drains them in strategy order. It is not safe for concurrent
// use; the runtime serializes access.
type Agenda struct {
	strategy Strategy
	pending  []Firing
	nextSeq  uint64
}

// NewAgenda returns an agenda using the given strategy (ByPriority if nil).
func NewAgenda(s Strategy) *Agenda {
	if s == nil {
		s = ByPriority{}
	}
	return &Agenda{strategy: s}
}

// SetStrategy swaps the conflict-resolution policy.
func (a *Agenda) SetStrategy(s Strategy) { a.strategy = s }

// Add schedules a firing.
func (a *Agenda) Add(r *Rule, det event.Detection) {
	a.nextSeq++
	a.pending = append(a.pending, Firing{Rule: r, Detection: det, Seq: a.nextSeq})
}

// AddFiring schedules a pre-built firing, preserving its scheduling
// metadata (subscriber, write set); Seq is assigned on arrival like Add.
func (a *Agenda) AddFiring(f Firing) {
	a.nextSeq++
	f.Seq = a.nextSeq
	a.pending = append(a.pending, f)
}

// Len returns the number of pending firings.
func (a *Agenda) Len() int { return len(a.pending) }

// Drain removes and returns all pending firings in execution order.
// Firings added while the caller processes the batch land in the next
// Drain, so cascades are breadth-ordered.
func (a *Agenda) Drain() []Firing {
	if len(a.pending) == 0 {
		return nil
	}
	out := a.pending
	a.pending = nil
	a.strategy.Order(out)
	return out
}

// Clear drops all pending firings (transaction abort).
func (a *Agenda) Clear() { a.pending = nil }
