package server_test

// Session-teardown coverage (the PR's lifecycle satellite): disconnecting
// mid-pipeline and mid-subscription must release subscriptions, drain the
// per-session queues, and leak zero goroutines; Server.Close while
// sessions are active must shut down in order without racing committers —
// the networked sibling of the core Close-race tests.

import (
	"context"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/server"
	"sentinel/internal/value"
	"sentinel/internal/wire"
)

// stableGoroutines samples runtime.NumGoroutine until it stops shrinking,
// letting teardown goroutines finish before the leak assertion.
func stableGoroutines(deadline time.Duration, want int) int {
	end := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for time.Now().Before(end) {
		if n <= want {
			return n
		}
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestSessionTeardownLeaksNothing: open sessions, subscribe, pipeline,
// disconnect abruptly — goroutine count returns to the pre-session
// baseline and every subscription is released.
func TestSessionTeardownLeaksNothing(t *testing.T) {
	db, srv := startServer(t, server.Options{})
	baseline := runtime.NumGoroutine()

	const sessions = 8
	clients := make([]*client.Client, sessions)
	for i := range clients {
		c, err := client.Dial(context.Background(), srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		id, _, err := c.Lookup(context.Background(), "A")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Subscribe(context.Background(), id, "", wire.MomentAny, func(wire.Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.SinkSubscriptions(); got != sessions {
		t.Fatalf("subscriptions = %d, want %d", got, sessions)
	}

	// Disconnect mid-pipeline: launch reads and close without waiting.
	for _, c := range clients {
		id, _, _ := c.Lookup(context.Background(), "A")
		for i := 0; i < 16; i++ {
			c.GoGet(context.Background(), id, "val")
		}
		c.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for db.SinkSubscriptions() != 0 || srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("teardown incomplete: sessions=%d subs=%d", srv.Sessions(), db.SinkSubscriptions())
		}
		time.Sleep(time.Millisecond)
	}
	if got := stableGoroutines(5*time.Second, baseline); got > baseline {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
}

// TestDisconnectMidSubscriptionUnderFire: the session dies while pushes
// for it are in flight. Committers must neither block nor panic, and the
// subscription must be gone afterwards.
func TestDisconnectMidSubscriptionUnderFire(t *testing.T) {
	db, srv := startServer(t, server.Options{QueueLen: 8})
	c, err := client.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c.Lookup(context.Background(), "A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(context.Background(), id, "", wire.MomentAny, func(wire.Event) {}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Atomically(func(tx *core.Tx) error {
				_, err := db.Send(tx, id, "SetVal", value.Int(int64(i)))
				return err
			}); err != nil {
				t.Errorf("commit during disconnect: %v", err)
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond) // let pushes flow
	c.Close()
	time.Sleep(10 * time.Millisecond) // keep committing into the dead session
	close(stop)
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for db.SinkSubscriptions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription survived disconnect: %d", db.SinkSubscriptions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerCloseWhileSessionsActive: Server.Close with live, active
// sessions must tear everything down in order — no goroutine leaks, no
// deadlock between session teardown and a committer fanning out pushes —
// and the database must still be fully usable afterwards.
func TestServerCloseWhileSessionsActive(t *testing.T) {
	db := core.MustOpen(core.Options{Output: io.Discard})
	defer db.Close()
	if err := db.Exec(itemSchema); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, server.Options{Addr: "127.0.0.1:0", QueueLen: 8})
	if err != nil {
		t.Fatal(err)
	}

	clients := make([]*client.Client, 4)
	for i := range clients {
		c, err := client.Dial(context.Background(), srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}
	objID, _, err := clients[0].Lookup(context.Background(), "A")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if _, err := c.Subscribe(context.Background(), objID, "", wire.MomentAny, func(wire.Event) {}); err != nil {
			t.Fatal(err)
		}
	}

	// A committer hammers pushes while Close runs.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = db.Atomically(func(tx *core.Tx) error {
				_, err := db.Send(tx, objID, "SetVal", value.Int(int64(i)))
				return err
			})
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	close(stop)
	wg.Wait()

	if srv.Sessions() != 0 {
		t.Fatalf("sessions after Close: %d", srv.Sessions())
	}
	if got := db.SinkSubscriptions(); got != 0 {
		t.Fatalf("subscriptions after Close: %d", got)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// New connections are refused, the database still works.
	if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err == nil {
		// A TCP dial may succeed briefly on some stacks even after close;
		// what matters is that no session is served. Just try a commit.
		_ = err
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, objID, "SetVal", value.Int(1000))
		return err
	}); err != nil {
		t.Fatalf("database unusable after server close: %v", err)
	}
}
