package server_test

// End-to-end tests over real TCP: the acceptance path (subscribe from one
// client, commit from another, receive the push without polling),
// pipelining, filters, the slow-consumer policies, and the guarantee that
// a stalled subscriber never stalls the commit path.

import (
	"bufio"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/server"
	"sentinel/internal/value"
	"sentinel/internal/wire"
)

// itemSchema is the shared test schema: a reactive persistent-free class
// with one end-generating method.
const itemSchema = `class Item reactive {
	attr val int
	event end method SetVal(v int) { self.val := v }
}
bind A new Item(val: 1)
bind B new Item(val: 2)`

func startServer(t *testing.T, srvOpts server.Options) (*core.Database, *server.Server) {
	t.Helper()
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := db.Exec(itemSchema); err != nil {
		db.Close()
		t.Fatal(err)
	}
	if srvOpts.Addr == "" {
		srvOpts.Addr = "127.0.0.1:0"
	}
	srv, err := server.New(db, srvOpts)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

func dial(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEndPush is the acceptance criterion: client A subscribes over
// TCP, client B's committed transaction raises the event, and A receives
// the firing frame without polling.
func TestEndToEndPush(t *testing.T) {
	_, srv := startServer(t, server.Options{})
	a := dial(t, srv)
	b := dial(t, srv)

	id, ok, err := a.Lookup(context.Background(), "A")
	if err != nil || !ok {
		t.Fatalf("lookup A: %v ok=%v", err, ok)
	}
	got := make(chan wire.Event, 4)
	subID, err := a.Subscribe(context.Background(), id, "SetVal", wire.MomentAny, func(ev wire.Event) { got <- ev })
	if err != nil {
		t.Fatal(err)
	}

	// B commits a transaction that raises end Item::SetVal on A's object.
	if err := b.Exec(context.Background(), `A!SetVal(42)`); err != nil {
		t.Fatal(err)
	}

	select {
	case ev := <-got:
		if ev.SubID != subID {
			t.Fatalf("push subID = %d, want %d", ev.SubID, subID)
		}
		if ev.Source != id || ev.Class != "Item" || ev.Method != "SetVal" {
			t.Fatalf("push = %+v", ev)
		}
		if ev.Moment != uint8(event.End) {
			t.Fatalf("push moment = %d, want end", ev.Moment)
		}
		if len(ev.Args) != 1 {
			t.Fatalf("push args = %v", ev.Args)
		}
		if v, ok := ev.Args[0].AsInt(); !ok || v != 42 {
			t.Fatalf("push arg = %v, want 42", ev.Args[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never arrived")
	}

	// The subscriber's own reads confirm the committed state.
	v, err := a.Get(context.Background(), id, "val")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 42 {
		t.Fatalf("val = %v, want 42", v)
	}
}

func TestPipelinedCommands(t *testing.T) {
	_, srv := startServer(t, server.Options{})
	c := dial(t, srv)
	id, _, err := c.Lookup(context.Background(), "A")
	if err != nil {
		t.Fatal(err)
	}
	// Launch a window of in-flight reads before waiting on any: responses
	// must come back matched by request id.
	const inflight = 64
	calls := make([]*client.Call, inflight)
	for i := range calls {
		calls[i] = c.GoGet(context.Background(), id, "val")
	}
	for i, call := range calls {
		v, err := c.GetCall(context.Background(), call)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if n, _ := v.AsInt(); n != 1 {
			t.Fatalf("call %d: val = %v", i, v)
		}
	}
}

func TestCommandSurface(t *testing.T) {
	_, srv := startServer(t, server.Options{})
	c := dial(t, srv)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	v, err := c.Eval(context.Background(), "1 + 2")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.AsInt(); n != 3 {
		t.Fatalf("eval = %v", v)
	}
	if _, ok, _ := c.Lookup(context.Background(), "nosuch"); ok {
		t.Fatal("lookup of unbound name succeeded")
	}
	ids, err := c.Instances(context.Background(), "Item")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("instances = %v, want 2", ids)
	}
	if err := c.Exec(context.Background(), "syntax error here"); err == nil {
		t.Fatal("bad script accepted")
	}
	if _, err := c.Get(context.Background(), 999999, "val"); err == nil {
		t.Fatal("get of nonexistent object succeeded")
	}
}

func TestSubscribeFilterOverWire(t *testing.T) {
	_, srv := startServer(t, server.Options{})
	c := dial(t, srv)
	idA, _, _ := c.Lookup(context.Background(), "A")
	gotA := make(chan wire.Event, 8)
	if _, err := c.Subscribe(context.Background(), idA, "", wire.MomentAny, func(ev wire.Event) { gotA <- ev }); err != nil {
		t.Fatal(err)
	}
	// Fire on B: A's subscription must stay silent.
	if err := c.Exec(context.Background(), `B!SetVal(7)`); err != nil {
		t.Fatal(err)
	}
	// Then fire on A to have a positive signal to wait for.
	if err := c.Exec(context.Background(), `A!SetVal(8)`); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-gotA:
		if ev.Source != idA {
			t.Fatalf("subscription leaked: push from %v", ev.Source)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push never arrived")
	}
	select {
	case ev := <-gotA:
		t.Fatalf("unexpected second push: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestUnsubscribeStopsPushes(t *testing.T) {
	_, srv := startServer(t, server.Options{})
	c := dial(t, srv)
	id, _, _ := c.Lookup(context.Background(), "A")
	got := make(chan wire.Event, 8)
	subID, err := c.Subscribe(context.Background(), id, "", wire.MomentAny, func(ev wire.Event) { got <- ev })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe(context.Background(), subID); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec(context.Background(), `A!SetVal(5)`); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		t.Fatalf("push after unsubscribe: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	// Unsubscribing someone else's (or a bogus) id errors.
	if err := c.Unsubscribe(context.Background(), 99999); err == nil {
		t.Fatal("bogus unsubscribe succeeded")
	}
}

// rawSession is a hand-driven wire connection for tests that need a client
// which deliberately stops reading.
type rawSession struct {
	conn net.Conn
	br   *bufio.Reader
	req  uint32
}

func rawDial(t *testing.T, srv *server.Server) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := &rawSession{conn: conn, br: bufio.NewReader(conn)}
	resp := r.roundTrip(t, wire.OpHello, wire.AppendValues(nil, value.Int(wire.ProtocolVersion)))
	if resp.Op != wire.OpWelcome {
		t.Fatalf("handshake: %s", wire.OpName(resp.Op))
	}
	return r
}

// refFromResult unwraps an OpResult frame holding a ref.
func refFromResult(t *testing.T, f wire.Frame) oid.OID {
	t.Helper()
	if f.Op != wire.OpResult {
		t.Fatalf("expected RESULT, got %s", wire.OpName(f.Op))
	}
	vals, err := wire.DecodeValues(f.Payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := vals[0].AsRef()
	if !ok {
		t.Fatalf("result is not a ref: %v", vals[0])
	}
	return id
}

func (r *rawSession) roundTrip(t *testing.T, op byte, payload []byte) wire.Frame {
	t.Helper()
	r.req++
	if _, err := r.conn.Write(wire.AppendFrame(nil, wire.Frame{Op: op, ReqID: r.req, Payload: payload})); err != nil {
		t.Fatal(err)
	}
	f, _, err := wire.ReadFrame(r.br, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSlowConsumerNeverStallsCommit is the backpressure acceptance
// criterion: a subscriber that stops reading fills its bounded queue, and
// committers keep committing at full speed — pushes drop, commits never
// block.
func TestSlowConsumerNeverStallsCommit(t *testing.T) {
	db, srv := startServer(t, server.Options{QueueLen: 4})
	slow := rawDial(t, srv)
	id := refFromResult(t, slow.roundTrip(t, wire.OpLookup, wire.AppendValues(nil, value.Str("A"))))
	sub := slow.roundTrip(t, wire.OpSubscribe,
		wire.AppendValues(nil, value.Ref(id), value.Str(""), value.Int(wire.MomentAny)))
	if sub.Op != wire.OpSubOK {
		t.Fatalf("subscribe: %s", wire.OpName(sub.Op))
	}
	// The slow session now reads nothing. Commit far more events than
	// QueueLen + the socket could buffer frames for; each commit must
	// complete promptly.
	const commits = 200
	start := time.Now()
	for i := 0; i < commits; i++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, id, "SetVal", value.Int(int64(i)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Generous bound: if any commit had blocked on the dead consumer the
	// loop would hang, not merely run slow. This guards regressions that
	// turn the non-blocking enqueue into a wait.
	if elapsed > 10*time.Second {
		t.Fatalf("%d commits took %v with a stalled subscriber", commits, elapsed)
	}
	m := db.Metrics()
	drops, _ := m.Counter("sentinel_server_push_drops_total")
	if drops == 0 {
		t.Fatal("no pushes dropped despite a stalled subscriber and a full queue")
	}
	sent, _ := m.Counter("sentinel_server_pushes_sent_total")
	if sent+drops != commits {
		t.Fatalf("sent (%d) + dropped (%d) != committed events (%d)", sent, drops, commits)
	}
	// DropEvents keeps the session alive.
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d, want 1 (DropEvents must not disconnect)", srv.Sessions())
	}
}

// TestDisconnectSlowPolicy: with Overflow = DisconnectSlow a consumer that
// overflows its queue loses the session (and its subscriptions).
func TestDisconnectSlowPolicy(t *testing.T) {
	db, srv := startServer(t, server.Options{QueueLen: 2, Overflow: server.DisconnectSlow})
	slow := rawDial(t, srv)
	id := refFromResult(t, slow.roundTrip(t, wire.OpLookup, wire.AppendValues(nil, value.Str("A"))))
	if f := slow.roundTrip(t, wire.OpSubscribe,
		wire.AppendValues(nil, value.Ref(id), value.Str(""), value.Int(wire.MomentAny))); f.Op != wire.OpSubOK {
		t.Fatalf("subscribe: %s", wire.OpName(f.Op))
	}
	for i := 0; i < 100; i++ {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, id, "SetVal", value.Int(int64(i)))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.SinkSubscriptions() != 0 || srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow session not disconnected: sessions=%d subs=%d",
				srv.Sessions(), db.SinkSubscriptions())
		}
		time.Sleep(time.Millisecond)
	}
	m := db.Metrics()
	if n, _ := m.Counter("sentinel_server_push_disconnects_total"); n == 0 {
		t.Fatal("disconnect not counted")
	}
}

func TestBadHandshake(t *testing.T) {
	_, srv := startServer(t, server.Options{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	// Wrong protocol version.
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{
		Op: wire.OpHello, ReqID: 1,
		Payload: wire.AppendValues(nil, value.Int(999)),
	})); err != nil {
		t.Fatal(err)
	}
	f, _, err := wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.OpErr {
		t.Fatalf("bad version answered %s", wire.OpName(f.Op))
	}
	// Request id 0 is reserved for pushes.
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Op: wire.OpPing, ReqID: 0})); err != nil {
		t.Fatal(err)
	}
	f, _, err = wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.OpErr {
		t.Fatalf("reqid 0 answered %s", wire.OpName(f.Op))
	}
	// Unknown opcode.
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Frame{Op: 99, ReqID: 2})); err != nil {
		t.Fatal(err)
	}
	f, _, err = wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != wire.OpErr || f.ReqID != 2 {
		t.Fatalf("unknown opcode answered %s reqid %d", wire.OpName(f.Op), f.ReqID)
	}
}

// TestMetricsSurface: the per-session/connection counters land in the
// database's registry.
func TestMetricsSurface(t *testing.T) {
	db, srv := startServer(t, server.Options{})
	c := dial(t, srv)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if n, ok := m.Counter("sentinel_server_sessions_total"); !ok || n == 0 {
		t.Fatalf("sessions_total = %d ok=%v", n, ok)
	}
	if n, ok := m.Counter("sentinel_server_frames_in_total"); !ok || n < 2 { // hello + ping
		t.Fatalf("frames_in_total = %d ok=%v", n, ok)
	}
	if g, ok := m.Gauge("sentinel_server_sessions"); !ok || g != 1 {
		t.Fatalf("sessions gauge = %d ok=%v", g, ok)
	}
}
