// Package server exposes a Database over TCP: the sentinel-server network
// boundary. Each accepted connection becomes a session speaking the
// internal/wire protocol — pipelined request/response frames plus
// unsolicited push frames for subscriptions the session registered.
//
// Session shape (the ≤2-goroutines-per-idle-session rule):
//
//	reader ── decodes frames, executes each opcode inline (so execution
//	          order is exactly TCP arrival order — pipelining needs no
//	          reorder buffer), enqueues the response
//	writer ── drains the bounded out-queue into the socket, coalescing
//	          whatever is pending into one flush
//
// Responses enqueue blocking: the reader stalls when the client does not
// drain its socket, which is exactly TCP backpressure surfacing to the
// protocol layer. Pushes (core commit fan-out → DeliverEvent) must NEVER
// block — they run on committing goroutines — so they enqueue non-blocking
// and overflow is handled by policy: drop the event (default, counted) or
// disconnect the slow session. Either way the commit path proceeds
// untouched; this is the detached executor's bounded-queue discipline with
// drops in place of backpressure, because a remote subscriber — unlike a
// rule — has no transactional claim on the commit.
//
// Reads (OpGet, OpInstances) ride MVCC snapshots (Database.BeginSnapshot):
// they take no locks and never contend with committers.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/obs"
	"sentinel/internal/oid"
	"sentinel/internal/repl"
	"sentinel/internal/value"
	"sentinel/internal/wire"
)

// OverflowPolicy says what happens when a push arrives and the session's
// out-queue is full.
type OverflowPolicy int

const (
	// DropEvents drops the pushed event (counted in
	// sentinel_server_push_drops_total) and keeps the session. Subscribers
	// observe a gap, never a stall.
	DropEvents OverflowPolicy = iota
	// DisconnectSlow tears the session down: a consumer that cannot keep
	// up loses its connection (and its subscriptions), not just frames.
	DisconnectSlow
)

// Options configures a Server.
type Options struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7707", ":0").
	Addr string
	// QueueLen bounds each session's out-queue (responses + pushes).
	// Default 128.
	QueueLen int
	// Overflow is the slow-consumer policy for pushes. Default DropEvents.
	Overflow OverflowPolicy
	// Primary, when set, makes this server a replication primary: sessions
	// may attach as followers (OpReplHello) and the server hands them to
	// the Primary for log shipping. Nil servers reject replication opcodes.
	Primary *repl.Primary
	// Promote, when set, accepts the OpReplPromote admin opcode: a follower
	// server exposes its promotion path through it (typically signalling the
	// process main loop, which tears this server down, promotes the
	// follower, and restarts serving over the new primary database). It runs
	// on the requesting session's reader goroutine; return before the
	// teardown happens so the OK can still be written.
	Promote func() error
}

// Server accepts wire-protocol sessions against one Database. Create at
// most one Server per Database: its metrics register once in the
// database's registry.
type Server struct {
	db   *core.Database
	ln   net.Listener
	opts Options

	mu       sync.Mutex
	sessions map[uint64]*session
	closed   bool

	sidSeq atomic.Uint64
	wg     sync.WaitGroup

	met serverMetrics
}

type serverMetrics struct {
	sessionsTotal   *obs.Counter
	framesIn        *obs.Counter
	framesOut       *obs.Counter
	pushesSent      *obs.Counter
	pushDrops       *obs.Counter
	pushDisconnects *obs.Counter
	cmdErrors       *obs.Counter
}

// New binds the listener and starts accepting sessions.
func New(db *core.Database, opts Options) (*Server, error) {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 128
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		db:       db,
		ln:       ln,
		opts:     opts,
		sessions: make(map[uint64]*session),
	}
	reg := db.MetricsRegistry()
	s.met = serverMetrics{
		sessionsTotal:   reg.Counter("sentinel_server_sessions_total", "sessions accepted"),
		framesIn:        reg.Counter("sentinel_server_frames_in_total", "request frames received"),
		framesOut:       reg.Counter("sentinel_server_frames_out_total", "response frames sent"),
		pushesSent:      reg.Counter("sentinel_server_pushes_sent_total", "push event frames enqueued for delivery"),
		pushDrops:       reg.Counter("sentinel_server_push_drops_total", "push events dropped on a full session queue"),
		pushDisconnects: reg.Counter("sentinel_server_push_disconnects_total", "sessions disconnected for falling behind on pushes"),
		cmdErrors:       reg.Counter("sentinel_server_cmd_errors_total", "commands answered with OpErr"),
	}
	reg.Gauge("sentinel_server_sessions", "live sessions", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.sessions))
	})
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (resolves ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops accepting, tears down every live session (their
// subscriptions release), and waits for all session goroutines to exit.
// The Database is untouched — close it after the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, sess := range live {
		sess.teardown()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.startSession(conn)
	}
}

// startSession registers and launches a session, unless the server is
// already closing (then the connection is refused by closing it).
func (s *Server) startSession(conn net.Conn) {
	sess := &session{
		srv:  s,
		id:   s.sidSeq.Add(1),
		conn: conn,
		out:  make(chan wire.Frame, s.opts.QueueLen),
		done: make(chan struct{}),
		subs: make(map[uint64]bool),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.met.sessionsTotal.Inc()
	s.wg.Add(2)
	go sess.readLoop()
	go sess.writeLoop()
}

func (s *Server) removeSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

// session is one connection. The reader goroutine owns subs (no lock: all
// subscribe/unsubscribe commands execute on it); teardown releases them
// through UnsubscribeAllSinks, which matches by sink identity and needs no
// view of the map.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn

	out  chan wire.Frame
	done chan struct{}

	closeOnce sync.Once
	subs      map[uint64]bool

	// follower marks a session attached to the replication primary; its
	// teardown must detach it (stopping its shipper goroutine).
	follower atomic.Bool

	// drops counts pushes this session lost to a full queue (DropEvents).
	drops atomic.Uint64
}

// teardown shuts the session down exactly once, from any goroutine:
// subscriptions release first (no new pushes target the queue), then done
// unblocks the writer and any blocked response enqueue, then the
// connection closes (unblocking the reader). The out channel is never
// closed — senders race teardown, and a buffered frame beyond done is
// simply garbage-collected.
func (s *session) teardown() {
	s.closeOnce.Do(func() {
		if s.follower.Load() {
			s.srv.opts.Primary.RemoveFollower(s.id)
		}
		s.srv.db.UnsubscribeAllSinks(s)
		close(s.done)
		s.conn.Close()
		s.srv.removeSession(s.id)
	})
}

// enqueue queues a response frame, blocking while the out-queue is full
// (reader-side backpressure: the client is not draining its socket).
// Returns false when the session died instead.
func (s *session) enqueue(f wire.Frame) bool {
	select {
	case s.out <- f:
		return true
	case <-s.done:
		return false
	}
}

// SessionID implements repl.FollowerSession.
func (s *session) SessionID() uint64 { return s.id }

// Send implements repl.FollowerSession: enqueue a push frame, blocking
// while the out-queue is full (the shipper paces itself to this follower).
// cancel aborts the wait when the follower is being detached; false means
// the frame was not enqueued and the stream is over.
func (s *session) Send(op byte, payload []byte, cancel <-chan struct{}) bool {
	select {
	case s.out <- wire.Frame{Op: op, Payload: payload}:
		return true
	case <-s.done:
		return false
	case <-cancel:
		return false
	}
}

// TrySend implements repl.FollowerSession: wait-free enqueue for
// event-only batches (droppable — nothing durable rides on them).
func (s *session) TrySend(op byte, payload []byte) bool {
	select {
	case s.out <- wire.Frame{Op: op, Payload: payload}:
		return true
	case <-s.done:
		return false
	default:
		s.srv.met.pushDrops.Inc()
		s.drops.Add(1)
		return false
	}
}

// DeliverEvent implements core.EventSink: called on a committing
// goroutine after the raising transaction became durable. It must not
// block — a full queue invokes the overflow policy, never a wait.
func (s *session) DeliverEvent(subID uint64, occ event.Occurrence) {
	ev := wire.Event{
		SubID:      subID,
		Source:     occ.Source,
		Class:      occ.Class,
		Method:     occ.Method,
		Moment:     uint8(occ.When),
		Seq:        occ.Seq,
		Args:       occ.Args,
		ParamNames: occ.ParamNames,
	}
	f := wire.Frame{Op: wire.OpEvent, Payload: wire.AppendEvent(nil, ev)}
	select {
	case <-s.done:
		// Session dying: its subscriptions are going away; drop quietly.
	case s.out <- f:
		s.srv.met.pushesSent.Inc()
	default:
		s.srv.met.pushDrops.Inc()
		s.drops.Add(1)
		if s.srv.opts.Overflow == DisconnectSlow {
			s.srv.met.pushDisconnects.Inc()
			// Teardown takes the sink-registry and server locks; spawn it
			// off the commit path so delivery stays wait-free.
			go s.teardown()
		}
	}
}

// readLoop decodes and executes frames until the connection dies, then
// tears the session down.
func (s *session) readLoop() {
	defer s.srv.wg.Done()
	defer s.teardown()
	br := newReader(s.conn)
	var scratch []byte
	for {
		var (
			f   wire.Frame
			err error
		)
		f, scratch, err = wire.ReadFrame(br, scratch)
		if err != nil {
			return
		}
		s.srv.met.framesIn.Inc()
		resp := s.handle(f)
		if resp.Op == 0 {
			// Sentinel: the handler enqueued its response itself (the
			// replication handshake, whose welcome must precede the
			// stream's first push).
			continue
		}
		if !s.enqueue(resp) {
			return
		}
	}
}

// writeLoop drains the out-queue into the socket. Consecutive pending
// frames coalesce into one flush, amortizing syscalls under pipelining and
// fan-out bursts.
func (s *session) writeLoop() {
	defer s.srv.wg.Done()
	bw := newWriter(s.conn)
	var buf []byte
	for {
		var f wire.Frame
		select {
		case f = <-s.out:
		case <-s.done:
			return
		}
		for {
			var err error
			buf, err = wire.WriteFrame(bw, buf, f)
			if err != nil {
				s.teardown()
				return
			}
			s.srv.met.framesOut.Inc()
			select {
			case f = <-s.out:
				continue
			default:
			}
			break
		}
		if bw.Flush() != nil {
			s.teardown()
			return
		}
	}
}

// errFrame builds an OpErr response.
func (s *session) errFrame(reqID uint32, err error) wire.Frame {
	s.srv.met.cmdErrors.Inc()
	return wire.Frame{Op: wire.OpErr, ReqID: reqID, Payload: wire.ErrPayload(err.Error())}
}

var errZeroReqID = errors.New("request id 0 is reserved for pushes")

// handle executes one request frame and returns its response. The frame's
// payload aliases the read scratch, so anything retained (strings decode
// by copy already) must not outlive the call — responses carry freshly
// built payloads.
func (s *session) handle(f wire.Frame) wire.Frame {
	if f.ReqID == 0 {
		return s.errFrame(0, errZeroReqID)
	}
	db := s.srv.db
	switch f.Op {
	case wire.OpHello:
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		ver, ok := vals[0].AsInt()
		if !ok || ver != wire.ProtocolVersion {
			return s.errFrame(f.ReqID, fmt.Errorf("unsupported protocol version %v (server speaks %d)", vals[0], wire.ProtocolVersion))
		}
		return wire.Frame{Op: wire.OpWelcome, ReqID: f.ReqID,
			Payload: wire.AppendValues(nil, value.Int(wire.ProtocolVersion), value.Int(int64(s.id)))}

	case wire.OpPing:
		return wire.Frame{Op: wire.OpPong, ReqID: f.ReqID}

	case wire.OpExec:
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		src, ok := vals[0].AsString()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("EXEC payload is not a string"))
		}
		if err := db.Exec(src); err != nil {
			return s.errFrame(f.ReqID, err)
		}
		return wire.Frame{Op: wire.OpOK, ReqID: f.ReqID}

	case wire.OpEval:
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		src, ok := vals[0].AsString()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("EVAL payload is not a string"))
		}
		v, err := db.Eval(src)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		return wire.Frame{Op: wire.OpResult, ReqID: f.ReqID, Payload: wire.AppendValues(nil, v)}

	case wire.OpLookup:
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		name, ok := vals[0].AsString()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("LOOKUP payload is not a string"))
		}
		id, found := db.Lookup(name)
		res := value.Nil
		if found {
			res = value.Ref(id)
		}
		return wire.Frame{Op: wire.OpResult, ReqID: f.ReqID, Payload: wire.AppendValues(nil, res)}

	case wire.OpGet:
		vals, err := wire.DecodeValues(f.Payload, 2)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		id, ok := vals[0].AsRef()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("GET target is not a ref"))
		}
		attr, ok := vals[1].AsString()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("GET attribute is not a string"))
		}
		// Snapshot read: lock-free, sees the latest stable commit, never
		// contends with writers.
		snap := db.BeginSnapshot()
		v, err := db.Get(snap, id, attr)
		db.Abort(snap)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		return wire.Frame{Op: wire.OpResult, ReqID: f.ReqID, Payload: wire.AppendValues(nil, v)}

	case wire.OpInstances:
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		class, ok := vals[0].AsString()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("INSTANCES payload is not a string"))
		}
		snap := db.BeginSnapshot()
		ids := db.InstancesOfAt(snap, class)
		db.Abort(snap)
		refs := make([]value.Value, len(ids))
		for i, id := range ids {
			refs[i] = value.Ref(id)
		}
		return wire.Frame{Op: wire.OpResult, ReqID: f.ReqID, Payload: wire.AppendValues(nil, value.List(refs...))}

	case wire.OpSubscribe:
		vals, err := wire.DecodeValues(f.Payload, 3)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		src, ok := vals[0].AsRef()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("SUBSCRIBE target is not a ref"))
		}
		method, ok := vals[1].AsString()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("SUBSCRIBE event name is not a string"))
		}
		moment, ok := vals[2].AsInt()
		if !ok || moment < 0 || moment > 255 {
			return s.errFrame(f.ReqID, errors.New("SUBSCRIBE moment out of range"))
		}
		filter := core.SinkFilter{Method: method}
		if moment != wire.MomentAny {
			filter.Moment = event.Moment(moment)
			filter.MomentSet = true
		}
		subID, err := db.SubscribeSink(oid.OID(src), filter, s)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		s.subs[subID] = true
		return wire.Frame{Op: wire.OpSubOK, ReqID: f.ReqID, Payload: wire.AppendValues(nil, value.Int(int64(subID)))}

	case wire.OpUnsubscribe:
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		subID, ok := vals[0].AsInt()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("UNSUBSCRIBE payload is not an int"))
		}
		// Sessions release only their own subscriptions.
		if !s.subs[uint64(subID)] {
			return s.errFrame(f.ReqID, fmt.Errorf("subscription %d not held by this session", subID))
		}
		delete(s.subs, uint64(subID))
		db.UnsubscribeSink(uint64(subID))
		return wire.Frame{Op: wire.OpOK, ReqID: f.ReqID}

	case wire.OpReplHello:
		p := s.srv.opts.Primary
		if p == nil {
			return s.errFrame(f.ReqID, errors.New("server is not a replication primary"))
		}
		vals, err := wire.DecodeValues(f.Payload, 2)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		startLSN, ok := vals[0].AsInt()
		if !ok || startLSN < 0 {
			return s.errFrame(f.ReqID, errors.New("REPLHELLO start LSN out of range"))
		}
		epoch, ok := vals[1].AsInt()
		if !ok {
			return s.errFrame(f.ReqID, errors.New("REPLHELLO epoch is not an int"))
		}
		primaryEpoch, shipped, needBase, err := p.AddFollower(s, uint64(startLSN), uint64(epoch))
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		s.follower.Store(true)
		nb := int64(0)
		if needBase {
			nb = 1
		}
		welcome := wire.Frame{Op: wire.OpReplWelcome, ReqID: f.ReqID,
			Payload: wire.AppendValues(nil, value.Int(int64(primaryEpoch)), value.Int(int64(shipped)), value.Int(nb))}
		if !s.enqueue(welcome) {
			p.RemoveFollower(s.id)
			return wire.Frame{} // session died; readLoop exits on its own
		}
		// Only now may stream pushes flow: the welcome holds its queue slot.
		p.StartShipper(s.id)
		return wire.Frame{} // sentinel: response already enqueued

	case wire.OpReplAck:
		p := s.srv.opts.Primary
		if p == nil {
			return s.errFrame(f.ReqID, errors.New("server is not a replication primary"))
		}
		// Lenient decode: a v3 ack carries [appliedLSN, epoch], a v2 ack
		// just [appliedLSN] — treat the latter as epoch 0 (never counted
		// toward a quorum, still fine for lag accounting).
		var lsn, epoch int64
		if vals, err := wire.DecodeValues(f.Payload, 2); err == nil {
			lsn, _ = vals[0].AsInt()
			epoch, _ = vals[1].AsInt()
		} else {
			vals, err := wire.DecodeValues(f.Payload, 1)
			if err != nil {
				return s.errFrame(f.ReqID, err)
			}
			lsn, _ = vals[0].AsInt()
		}
		if lsn < 0 || epoch < 0 {
			return s.errFrame(f.ReqID, errors.New("REPLACK LSN or epoch out of range"))
		}
		p.Ack(s.id, uint64(lsn), uint64(epoch))
		return wire.Frame{Op: wire.OpOK, ReqID: f.ReqID}

	case wire.OpReplPromote:
		promote := s.srv.opts.Promote
		if promote == nil {
			return s.errFrame(f.ReqID, errors.New("server has no promotion path (not a follower)"))
		}
		if err := promote(); err != nil {
			return s.errFrame(f.ReqID, err)
		}
		return wire.Frame{Op: wire.OpOK, ReqID: f.ReqID}

	case wire.OpReplFence:
		p := s.srv.opts.Primary
		if p == nil {
			return s.errFrame(f.ReqID, errors.New("server is not a replication primary"))
		}
		vals, err := wire.DecodeValues(f.Payload, 1)
		if err != nil {
			return s.errFrame(f.ReqID, err)
		}
		epoch, ok := vals[0].AsInt()
		if !ok || epoch < 0 {
			return s.errFrame(f.ReqID, errors.New("REPLFENCE epoch out of range"))
		}
		p.FenceIfNewer(uint64(epoch))
		return wire.Frame{Op: wire.OpOK, ReqID: f.ReqID}

	default:
		return s.errFrame(f.ReqID, fmt.Errorf("unknown opcode %s", wire.OpName(f.Op)))
	}
}
