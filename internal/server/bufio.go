package server

import (
	"bufio"
	"io"
)

// sessionBufSize sizes each session's read and write buffers. Idle-session
// memory is dominated by these plus the two goroutine stacks, so they stay
// small: 1 KiB each way covers every control frame in one buffer, large
// payloads fall through bufio to the socket directly, and 10k idle
// sessions cost ~20 MB of buffer instead of bufio's default ~80 MB.
const sessionBufSize = 1024

func newReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, sessionBufSize) }
func newWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, sessionBufSize) }
