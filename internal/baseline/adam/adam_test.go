package adam_test

import (
	"io"
	"testing"

	"sentinel/internal/baseline/adam"
	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

func setup(t *testing.T) (*core.Database, *adam.System, *bench.Org) {
	t.Helper()
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	org, err := bench.BuildOrg(db, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys := adam.New(db)
	if err := db.Atomically(func(tx *core.Tx) error { return sys.EnrollClass(tx, "Employee") }); err != nil {
		t.Fatal(err)
	}
	return db, sys, org
}

func TestRuntimeRuleCreation(t *testing.T) {
	db, sys, org := setup(t)
	fired := 0
	if err := sys.NewRule(&adam.Rule{
		Name: "watch", ActiveClass: "Employee", ActiveMethod: "SetSalary",
		When: event.End, Enabled: true,
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			fired++
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Duplicate names rejected; delete works.
	if err := sys.NewRule(&adam.Rule{Name: "watch", ActiveClass: "Employee"}); err == nil {
		t.Fatal("duplicate rule accepted")
	}
	if err := sys.DeleteRule("watch"); err != nil {
		t.Fatal(err)
	}
	if sys.Rule("watch") != nil || sys.RuleCount() != 0 {
		t.Fatal("delete failed")
	}
	if err := sys.DeleteRule("watch"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestCentralizedCheckingCostsScaleWithRuleBase(t *testing.T) {
	db, sys, org := setup(t)
	// 10 rules for an unrelated method still get examined on every event —
	// the §3.5 cost Sentinel's subscriptions avoid.
	for i := 0; i < 10; i++ {
		if err := sys.NewRule(&adam.Rule{
			Name: "idle-" + string(rune('a'+i)), ActiveClass: "Employee",
			ActiveMethod: "ChangeIncome", When: event.End, Enabled: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.Checked()
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Checked() - before; got != 10 {
		t.Fatalf("checked %d rules, want all 10 (centralized)", got)
	}
}

func TestRuleInheritanceAppliesToSubclasses(t *testing.T) {
	db, sys, org := setup(t)
	if err := db.Atomically(func(tx *core.Tx) error { return sys.EnrollClass(tx, "Manager") }); err != nil {
		t.Fatal(err)
	}
	fired := 0
	if err := sys.NewRule(&adam.Rule{
		Name: "empRule", ActiveClass: "Employee", ActiveMethod: "SetSalary",
		When: event.End, Enabled: true,
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			fired++
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	// A Manager event triggers the Employee rule (rule inheritance).
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Managers[0], "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("inherited rule fired %d times", fired)
	}
}

func TestDisabledForFiltersInstancesAfterDispatch(t *testing.T) {
	db, sys, org := setup(t)
	fired := 0
	if err := sys.NewRule(&adam.Rule{
		Name: "r", ActiveClass: "Employee", ActiveMethod: "SetSalary",
		When: event.End, Enabled: true,
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			fired++
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.DisableFor("r", org.Employees[0]); err != nil {
		t.Fatal(err)
	}
	before := sys.Checked()
	send := func(i int) {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, org.Employees[i], "SetSalary", value.Float(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(0) // disabled-for: filtered AFTER dispatch
	send(1) // fires
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Crucially the rule was still CHECKED for the disabled instance — the
	// event reached the matcher both times.
	if got := sys.Checked() - before; got != 2 {
		t.Fatalf("checked = %d, want 2", got)
	}
}

func TestEnableDisable(t *testing.T) {
	db, sys, org := setup(t)
	fired := 0
	if err := sys.NewRule(&adam.Rule{
		Name: "r", ActiveClass: "Employee", ActiveMethod: "SetSalary",
		When: event.End, Enabled: false,
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			fired++
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	send := func() {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(1))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	send()
	if fired != 0 {
		t.Fatal("disabled rule fired")
	}
	if err := sys.SetEnabled("r", true); err != nil {
		t.Fatal(err)
	}
	send()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if err := sys.SetEnabled("zzz", true); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

func TestAbortingRule(t *testing.T) {
	db, sys, org := setup(t)
	if err := sys.NewRule(&adam.Rule{
		Name: "guard", ActiveClass: "Employee", ActiveMethod: "SetSalary",
		When: event.End, Enabled: true,
		Cond: func(ctx rule.ExecContext, occ event.Occurrence) (bool, error) {
			f, _ := occ.Args[0].Numeric()
			return f < 0, nil
		},
		Act: func(ctx rule.ExecContext, occ event.Occurrence) error {
			return ctx.Abort("negative salary")
		},
	}); err != nil {
		t.Fatal(err)
	}
	err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(-1))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("guard: %v", err)
	}
}
