// Package ode reimplements the rule mechanism of Ode (Gehani & Jagadish,
// AT&T Bell Labs) as the paper characterizes it, to serve as the
// compile-time-endpoint baseline in the comparison of §5–§7:
//
//   - Constraints and triggers are declared ONLY inside class definitions
//     ("specification of (parameterized) rules only at the class definition
//     time").
//   - A rule is checked after every mutator method of ITS OWN class; events
//     spanning distinct classes cannot be expressed, so a cross-class rule
//     like Salary-check translates into two complementary constraints, one
//     per class (Fig. 11).
//   - Adding, removing or changing a rule requires rebuilding the class
//     definition ("changing the rules defined for objects requires the
//     modification of class definitions and thus recompiling the system") —
//     modeled by RebuildClass, which reconstructs the class and touches
//     every live instance.
//   - Hard constraints abort the violating transaction; soft constraints
//     run a handler.
//
// The baseline shares the core Database substrate so measured differences
// come from the rule mechanism, not the storage engine.
package ode

import (
	"fmt"
	"sync"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
)

// Severity distinguishes Ode's hard and soft constraints.
type Severity uint8

const (
	// Hard constraints abort the transaction on violation.
	Hard Severity = iota
	// Soft constraints invoke their handler on violation.
	Soft
)

// Constraint is a predicate over an instance, declared with the class. The
// predicate must hold after every mutator; Handler runs for violated soft
// constraints (nil Handler = no-op).
type Constraint struct {
	Name     string
	Severity Severity
	// Pred returns true when the instance satisfies the constraint.
	Pred func(ctx rule.ExecContext, self oid.OID) (bool, error)
	// Handler runs for violated soft constraints.
	Handler func(ctx rule.ExecContext, self oid.OID) error
}

// Trigger is an Ode trigger: a condition checked after mutators, firing an
// action (once or perpetually; this model re-arms automatically, i.e.
// perpetual).
type Trigger struct {
	Name string
	Cond func(ctx rule.ExecContext, self oid.OID) (bool, error)
	Act  func(ctx rule.ExecContext, self oid.OID) error
}

// ClassRules is the rule section of one class definition.
type ClassRules struct {
	Class       string
	Constraints []Constraint
	Triggers    []Trigger
}

// System is the Ode-style rule engine bolted onto a core database. Classes
// enroll with EnrollClass, which subscribes a checker to every mutator
// event of that class; the checker evaluates ALL of the class's constraints
// and triggers after EVERY mutator — the per-class, declaration-bound shape
// the paper contrasts with Sentinel's subscriptions.
type System struct {
	db *core.Database

	mu       sync.Mutex
	byClass  map[string]*ClassRules
	rulesFor map[string]*rule.Rule // class -> the checker rule object
	rebuilds int
	checks   int
}

// New wraps a database with the Ode-style engine.
func New(db *core.Database) *System {
	return &System{
		db:       db,
		byClass:  make(map[string]*ClassRules),
		rulesFor: make(map[string]*rule.Rule),
	}
}

// Checks returns the number of constraint/trigger evaluations performed.
func (s *System) Checks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checks
}

// Rebuilds returns how many times a class definition had to be rebuilt.
func (s *System) Rebuilds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuilds
}

// EnrollClass installs the rule section of a class. The class must already
// be registered with the database and be reactive (every mutator must be an
// event generator, since Ode instruments all member functions that can
// violate constraints).
func (s *System) EnrollClass(t *core.Tx, cr ClassRules) error {
	cls := s.db.Registry().Lookup(cr.Class)
	if cls == nil {
		return fmt.Errorf("ode: unknown class %q", cr.Class)
	}
	if !cls.Reactive() {
		return fmt.Errorf("ode: class %q must be reactive so mutators can be instrumented", cr.Class)
	}
	s.mu.Lock()
	if _, dup := s.byClass[cr.Class]; dup {
		s.mu.Unlock()
		return fmt.Errorf("ode: class %q already has a rule section (rebuild the class to change it)", cr.Class)
	}
	crCopy := cr
	s.byClass[cr.Class] = &crCopy
	s.mu.Unlock()

	// One class-level checker rule triggered by every eom event of the
	// class's event interface, evaluating the whole rule section.
	var ev *event.Expr
	for _, m := range cls.EventInterface() {
		var prim *event.Expr
		if m.EventGen.End() {
			prim = event.Primitive(event.End, cr.Class, m.Name)
		} else {
			prim = event.Primitive(event.Begin, cr.Class, m.Name)
		}
		if ev == nil {
			ev = prim
		} else {
			ev = event.Or(ev, prim)
		}
	}
	if ev == nil {
		return fmt.Errorf("ode: class %q declares no event-generating methods", cr.Class)
	}
	r, err := s.db.CreateRule(t, core.RuleSpec{
		Name:       "__ode_" + cr.Class,
		Event:      ev,
		Action:     s.checkAction(cr.Class),
		Coupling:   "immediate",
		ClassLevel: cr.Class,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.rulesFor[cr.Class] = r
	s.mu.Unlock()
	return nil
}

// checkAction evaluates every constraint and trigger of the class against
// the instance that generated the event.
func (s *System) checkAction(class string) rule.Action {
	return func(ctx rule.ExecContext, det event.Detection) error {
		self := det.Last().Source
		s.mu.Lock()
		cr := s.byClass[class]
		s.mu.Unlock()
		if cr == nil {
			return nil
		}
		for i := range cr.Constraints {
			c := &cr.Constraints[i]
			s.mu.Lock()
			s.checks++
			s.mu.Unlock()
			ok, err := c.Pred(ctx, self)
			if err != nil {
				return err
			}
			if ok {
				continue
			}
			if c.Severity == Hard {
				return ctx.Abort(fmt.Sprintf("ode: hard constraint %s violated on %s", c.Name, self))
			}
			if c.Handler != nil {
				if err := c.Handler(ctx, self); err != nil {
					return err
				}
			}
		}
		for i := range cr.Triggers {
			tr := &cr.Triggers[i]
			s.mu.Lock()
			s.checks++
			s.mu.Unlock()
			fire, err := tr.Cond(ctx, self)
			if err != nil {
				return err
			}
			if fire {
				if err := tr.Act(ctx, self); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// RebuildClass models Ode's cost of changing rules at runtime: rules live
// in the class definition, so changing them means recompiling the class and
// revalidating/patching every stored instance. The rule section is replaced
// and every live instance of the class is visited (read and version-bumped)
// inside the transaction.
func (s *System) RebuildClass(t *core.Tx, cr ClassRules) error {
	s.mu.Lock()
	old := s.rulesFor[cr.Class]
	delete(s.byClass, cr.Class)
	delete(s.rulesFor, cr.Class)
	s.rebuilds++
	s.mu.Unlock()
	if old != nil {
		if err := s.db.DeleteRule(t, old.Name()); err != nil {
			return err
		}
	}
	// Touch every instance: the "previously stored instances of changed
	// classes" cost the paper calls out (§2).
	cls := s.db.Registry().Lookup(cr.Class)
	if cls == nil {
		return fmt.Errorf("ode: unknown class %q", cr.Class)
	}
	for _, id := range s.db.InstancesOf(cr.Class) {
		for _, a := range cls.Attributes() {
			v, err := s.db.GetSys(t, id, a.Name)
			if err != nil {
				return err
			}
			if err := s.db.SetSys(t, id, a.Name, v); err != nil {
				return err
			}
		}
	}
	return s.EnrollClass(t, cr)
}
