package ode_test

import (
	"io"
	"testing"

	"sentinel/internal/baseline/ode"
	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/value"
)

func setup(t *testing.T) (*core.Database, *ode.System, *bench.Org) {
	t.Helper()
	db := core.MustOpen(core.Options{Output: io.Discard})
	if err := bench.InstallOrgSchema(db); err != nil {
		t.Fatal(err)
	}
	org, err := bench.BuildOrg(db, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	return db, ode.New(db), org
}

func TestHardConstraintAborts(t *testing.T) {
	db, sys, org := setup(t)
	err := db.Atomically(func(tx *core.Tx) error {
		return sys.EnrollClass(tx, ode.ClassRules{
			Class: "Employee",
			Constraints: []ode.Constraint{{
				Name:     "nonNegative",
				Severity: ode.Hard,
				Pred: func(ctx rule.ExecContext, self oid.OID) (bool, error) {
					v, err := ctx.GetAttr(self, "salary")
					if err != nil {
						return false, err
					}
					f, _ := v.Numeric()
					return f >= 0, nil
				},
			}},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// A violating mutator aborts its transaction.
	err = db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(-5))
		return err
	})
	if !core.IsAbort(err) {
		t.Fatalf("hard constraint: %v", err)
	}
	// The state rolled back.
	if err := db.Atomically(func(tx *core.Tx) error {
		v, err := db.GetSys(tx, org.Employees[0], "salary")
		if err != nil {
			return err
		}
		if f, _ := v.Numeric(); f != 1000 {
			t.Errorf("salary = %v", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A valid mutator passes.
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(5))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if sys.Checks() == 0 {
		t.Fatal("no checks recorded")
	}
}

func TestSoftConstraintHandler(t *testing.T) {
	db, sys, org := setup(t)
	handled := 0
	err := db.Atomically(func(tx *core.Tx) error {
		return sys.EnrollClass(tx, ode.ClassRules{
			Class: "Employee",
			Constraints: []ode.Constraint{{
				Name:     "soft",
				Severity: ode.Soft,
				Pred: func(ctx rule.ExecContext, self oid.OID) (bool, error) {
					return false, nil // always violated
				},
				Handler: func(ctx rule.ExecContext, self oid.OID) error {
					handled++
					return nil
				},
			}},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Atomically(func(tx *core.Tx) error {
		_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(1))
		return err
	}); err != nil {
		t.Fatalf("soft constraint aborted: %v", err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times", handled)
	}
}

func TestTriggers(t *testing.T) {
	db, sys, org := setup(t)
	fired := 0
	err := db.Atomically(func(tx *core.Tx) error {
		return sys.EnrollClass(tx, ode.ClassRules{
			Class: "Employee",
			Triggers: []ode.Trigger{{
				Name: "bigRaise",
				Cond: func(ctx rule.ExecContext, self oid.OID) (bool, error) {
					v, err := ctx.GetAttr(self, "salary")
					if err != nil {
						return false, err
					}
					f, _ := v.Numeric()
					return f > 5000, nil
				},
				Act: func(ctx rule.ExecContext, self oid.OID) error {
					fired++
					return nil
				},
			}},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func(amt float64) {
		if err := db.Atomically(func(tx *core.Tx) error {
			_, err := db.Send(tx, org.Employees[0], "SetSalary", value.Float(amt))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	send(100)
	if fired != 0 {
		t.Fatal("trigger fired below threshold")
	}
	send(9000)
	if fired != 1 {
		t.Fatalf("trigger fired %d times", fired)
	}
	// Perpetual: re-arms automatically.
	send(9500)
	if fired != 2 {
		t.Fatalf("trigger fired %d times", fired)
	}
}

func TestRuleChangeRequiresRebuild(t *testing.T) {
	db, sys, org := setup(t)
	section := func(name string) ode.ClassRules {
		return ode.ClassRules{
			Class: "Employee",
			Constraints: []ode.Constraint{{
				Name: name, Severity: ode.Soft,
				Pred: func(rule.ExecContext, oid.OID) (bool, error) { return true, nil },
			}},
		}
	}
	if err := db.Atomically(func(tx *core.Tx) error { return sys.EnrollClass(tx, section("v1")) }); err != nil {
		t.Fatal(err)
	}
	// A second enrollment of the same class is rejected: rules live in the
	// class definition.
	err := db.Atomically(func(tx *core.Tx) error { return sys.EnrollClass(tx, section("v2")) })
	if err == nil {
		t.Fatal("double enrollment accepted")
	}
	// RebuildClass replaces the section and touches every instance.
	if err := db.Atomically(func(tx *core.Tx) error { return sys.RebuildClass(tx, section("v2")) }); err != nil {
		t.Fatal(err)
	}
	if sys.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d", sys.Rebuilds())
	}
	_ = org
}

func TestEnrollErrors(t *testing.T) {
	db, sys, _ := setup(t)
	err := db.Atomically(func(tx *core.Tx) error {
		return sys.EnrollClass(tx, ode.ClassRules{Class: "Nope"})
	})
	if err == nil {
		t.Fatal("unknown class accepted")
	}
	// Portfolio is passive — cannot be instrumented.
	if err := bench.InstallMarketSchema(db); err != nil {
		t.Fatal(err)
	}
	err = db.Atomically(func(tx *core.Tx) error {
		return sys.EnrollClass(tx, ode.ClassRules{Class: "Portfolio"})
	})
	if err == nil {
		t.Fatal("passive class accepted")
	}
}
