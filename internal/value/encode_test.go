package value

import (
	"math"
	"testing"
	"testing/quick"

	"sentinel/internal/oid"
)

func roundtrip(t *testing.T, v Value) Value {
	t.Helper()
	buf := AppendValue(nil, v)
	got, rest, err := DecodeValue(buf)
	if err != nil {
		t.Fatalf("decode(%v): %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode(%v): %d leftover bytes", v, len(rest))
	}
	return got
}

func TestEncodeRoundtrip(t *testing.T) {
	values := []Value{
		Nil,
		Bool(true), Bool(false),
		Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-2.5), Float(math.Inf(1)), Float(math.SmallestNonzeroFloat64),
		Str(""), Str("hello"), Str(string([]byte{0, 1, 255})),
		Ref(oid.Nil), Ref(oid.OID(1 << 40)),
		Time(0), Time(1 << 50),
		List(),
		List(Int(1), Str("two"), List(Bool(true), Nil), Float(3.5)),
	}
	for _, v := range values {
		if got := roundtrip(t, v); !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
}

func TestEncodeRoundtripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, ref uint64) bool {
		if math.IsNaN(fl) {
			return true
		}
		v := List(Int(i), Float(fl), Str(s), Bool(b), Ref(oid.OID(ref)), List(Str(s)))
		buf := AppendValue(nil, v)
		got, rest, err := DecodeValue(buf)
		return err == nil && len(rest) == 0 && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeStream(t *testing.T) {
	// Multiple values in one buffer decode in order.
	var buf []byte
	vs := []Value{Int(1), Str("x"), Bool(true)}
	for _, v := range vs {
		buf = AppendValue(buf, v)
	}
	for _, want := range vs {
		var got Value
		var err error
		got, buf, err = DecodeValue(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d leftover bytes", len(buf))
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindBool)},                      // missing payload
		{byte(KindFloat), 1, 2},               // short float
		{byte(KindString), 10},                // length beyond buffer
		{byte(KindList), 3, byte(KindInt), 2}, // truncated list
		{200},                                 // unknown kind
		// List count far beyond the bytes present: must be rejected before
		// the element slice is sized from it (found by FuzzDecodeEvent — a
		// 5-byte varint count tried to allocate ~700 GB of elements).
		{byte(KindList), 0x99, 0x99, 0x99, 0x99, 0x30},
	}
	for i, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("case %d: expected error for % x", i, c)
		}
	}
}

func TestTypeEncodeRoundtrip(t *testing.T) {
	types := []*Type{
		nil, TypeNil, TypeBool, TypeInt, TypeFloat, TypeString, TypeTime,
		TypeAnyRef, TypeRef("Employee"), TypeList(TypeInt),
		TypeList(TypeRef("Stock")), TypeList(nil),
	}
	for _, ty := range types {
		buf := AppendType(nil, ty)
		got, rest, err := DecodeType(buf)
		if err != nil {
			t.Fatalf("decode type %v: %v", ty, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode type %v: leftover bytes", ty)
		}
		if ty == nil {
			if got != nil {
				t.Errorf("nil type decoded as %v", got)
			}
			continue
		}
		if got.String() != ty.String() {
			t.Errorf("type roundtrip %v -> %v", ty, got)
		}
	}
}

func TestParseType(t *testing.T) {
	good := map[string]string{
		"int":               "int",
		"float":             "float",
		"string":            "string",
		"bool":              "bool",
		"time":              "time",
		"ref":               "ref",
		"object":            "ref",
		"Employee":          "ref<Employee>",
		"list<int>":         "list<int>",
		"list<list<float>>": "list<list<float>>",
		"list<Stock>":       "list<ref<Stock>>",
	}
	for in, want := range good {
		ty, err := ParseType(in)
		if err != nil {
			t.Errorf("ParseType(%q): %v", in, err)
			continue
		}
		if ty.String() != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, ty, want)
		}
	}
	for _, bad := range []string{"", "list<", "a b", "x<y>"} {
		if _, err := ParseType(bad); err == nil {
			t.Errorf("ParseType(%q): expected error", bad)
		}
	}
}

func TestTypeAcceptsAndWiden(t *testing.T) {
	if !TypeFloat.Accepts(KindInt) {
		t.Error("float slot should accept int")
	}
	if TypeInt.Accepts(KindFloat) {
		t.Error("int slot should not accept float")
	}
	if !TypeRef("X").Accepts(KindNil) {
		t.Error("ref slot should accept nil")
	}
	if !TypeString.Accepts(KindNil) {
		t.Error("string slot should accept nil")
	}
	if TypeBool.Accepts(KindNil) {
		t.Error("bool slot should not accept nil")
	}
	w := TypeFloat.Widen(Int(3))
	if w.Kind() != KindFloat || !w.Equal(Float(3)) {
		t.Errorf("Widen(3) = %v", w)
	}
	// Widen passes non-matching kinds through untouched.
	if got := TypeFloat.Widen(Str("x")); got.Kind() != KindString {
		t.Errorf("Widen(str) = %v", got)
	}
	var nilType *Type
	if !nilType.Accepts(KindInt) {
		t.Error("nil type should accept anything")
	}
}

func TestTypeZero(t *testing.T) {
	cases := []struct {
		ty   *Type
		want Value
	}{
		{TypeInt, Int(0)},
		{TypeFloat, Float(0)},
		{TypeString, Str("")},
		{TypeBool, Bool(false)},
		{TypeRef("X"), Nil},
		{TypeTime, Time(0)},
		{TypeList(TypeInt), List()},
		{nil, Nil},
	}
	for _, c := range cases {
		got := c.ty.Zero()
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Zero(%v) = %v, want %v", c.ty, got, c.want)
		}
	}
}
