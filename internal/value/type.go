package value

import (
	"fmt"
	"math"
	"strings"
)

// Type describes the static type of an attribute or parameter in a class
// definition. Types are structural: two Types are compatible when their
// kinds match (and, for refs, when the referenced class is the same or a
// subclass — checked at the schema layer, which knows the hierarchy).
type Type struct {
	kind  Kind
	class string // for KindRef: the class name; "" means "any object"
	elem  *Type  // for KindList: the element type; nil means "any"
}

// Prebuilt scalar types.
var (
	TypeNil    = &Type{kind: KindNil}
	TypeBool   = &Type{kind: KindBool}
	TypeInt    = &Type{kind: KindInt}
	TypeFloat  = &Type{kind: KindFloat}
	TypeString = &Type{kind: KindString}
	TypeTime   = &Type{kind: KindTime}
	TypeAnyRef = &Type{kind: KindRef}
)

// TypeRef returns the type of references to instances of the named class
// (or its subclasses).
func TypeRef(class string) *Type { return &Type{kind: KindRef, class: class} }

// TypeList returns the type of lists whose elements have type elem (nil for
// heterogeneous lists).
func TypeList(elem *Type) *Type { return &Type{kind: KindList, elem: elem} }

// Kind returns the type's kind.
func (t *Type) Kind() Kind { return t.kind }

// Class returns the referenced class name for ref types ("" otherwise or for
// untyped refs).
func (t *Type) Class() string { return t.class }

// Elem returns the element type for list types (nil otherwise).
func (t *Type) Elem() *Type { return t.elem }

// String renders the type ("int", "ref<Employee>", "list<float>").
func (t *Type) String() string {
	if t == nil {
		return "any"
	}
	switch t.kind {
	case KindRef:
		if t.class == "" {
			return "ref"
		}
		return "ref<" + t.class + ">"
	case KindList:
		if t.elem == nil {
			return "list"
		}
		return "list<" + t.elem.String() + ">"
	default:
		return t.kind.String()
	}
}

// ParseType parses a type name as written in SentinelQL class definitions:
// int, float, string, bool, time, ref, ClassName (a ref), list<T>.
func ParseType(s string) (*Type, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "int":
		return TypeInt, nil
	case "float":
		return TypeFloat, nil
	case "string":
		return TypeString, nil
	case "bool":
		return TypeBool, nil
	case "time":
		return TypeTime, nil
	case "ref", "object":
		return TypeAnyRef, nil
	case "":
		return nil, fmt.Errorf("value: empty type name")
	}
	if strings.HasPrefix(s, "list<") && strings.HasSuffix(s, ">") {
		elem, err := ParseType(s[len("list<") : len(s)-1])
		if err != nil {
			return nil, err
		}
		return TypeList(elem), nil
	}
	if strings.ContainsAny(s, "<>() \t") {
		return nil, fmt.Errorf("value: malformed type %q", s)
	}
	// Any other identifier names a class.
	return TypeRef(s), nil
}

// Accepts reports whether a value of dynamic kind k is directly assignable
// to the type without knowledge of the class hierarchy. Nil is assignable to
// refs, strings, and lists (reference-like types). Ints are assignable to
// float-typed slots (widening); the schema layer performs the widening.
func (t *Type) Accepts(k Kind) bool {
	if t == nil {
		return true
	}
	if k == KindNil && (t.kind == KindRef || t.kind == KindString || t.kind == KindList) {
		return true
	}
	if t.kind == KindFloat && k == KindInt {
		return true
	}
	return t.kind == k
}

// Widen converts v for storage into a slot of this type: ints widen to
// floats when the slot is float-typed; everything else passes through.
func (t *Type) Widen(v Value) Value {
	if t != nil && t.kind == KindFloat && v.kind == KindInt {
		return Float(float64(int64(v.num)))
	}
	return v
}

// Zero returns the default value for the type: 0, 0.0, "", false, nil ref,
// empty list, t0.
func (t *Type) Zero() Value {
	if t == nil {
		return Nil
	}
	switch t.kind {
	case KindBool:
		return Bool(false)
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return Str("")
	case KindRef:
		return Nil
	case KindTime:
		return Time(0)
	case KindList:
		return List()
	default:
		return Nil
	}
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
