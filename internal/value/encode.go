package value

import (
	"encoding/binary"
	"fmt"

	"sentinel/internal/oid"
)

// Binary encoding of values, used by the storage layer. The format is
// self-describing and versionless by construction:
//
//	value  := kind:uint8 payload
//	bool   := 0|1 (uint8)
//	int    := zigzag varint
//	float  := 8 bytes little-endian IEEE bits
//	string := uvarint length, bytes
//	ref    := uvarint oid
//	time   := uvarint
//	list   := uvarint count, values...
//	nil    := (empty payload)

// AppendValue appends the binary encoding of v to buf and returns the
// extended slice.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNil:
	case KindBool:
		if v.num != 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindInt:
		buf = binary.AppendVarint(buf, int64(v.num))
	case KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v.num)
		buf = append(buf, b[:]...)
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.str)))
		buf = append(buf, v.str...)
	case KindRef, KindTime:
		buf = binary.AppendUvarint(buf, v.num)
	case KindList:
		buf = binary.AppendUvarint(buf, uint64(len(v.list)))
		for _, e := range v.list {
			buf = AppendValue(buf, e)
		}
	default:
		panic(fmt.Sprintf("value: encode unknown kind %d", v.kind))
	}
	return buf
}

// DecodeValue decodes one value from the front of buf, returning the value
// and the remaining bytes.
func DecodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Nil, nil, fmt.Errorf("value: decode: empty buffer")
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case KindNil:
		return Nil, buf, nil
	case KindBool:
		if len(buf) < 1 {
			return Nil, nil, fmt.Errorf("value: decode bool: short buffer")
		}
		return Bool(buf[0] != 0), buf[1:], nil
	case KindInt:
		i, n := binary.Varint(buf)
		if n <= 0 {
			return Nil, nil, fmt.Errorf("value: decode int: bad varint")
		}
		return Int(i), buf[n:], nil
	case KindFloat:
		if len(buf) < 8 {
			return Nil, nil, fmt.Errorf("value: decode float: short buffer")
		}
		return Value{kind: KindFloat, num: binary.LittleEndian.Uint64(buf)}, buf[8:], nil
	case KindString:
		ln, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < ln {
			return Nil, nil, fmt.Errorf("value: decode string: short buffer")
		}
		return Str(string(buf[n : n+int(ln)])), buf[n+int(ln):], nil
	case KindRef:
		u, n := binary.Uvarint(buf)
		if n <= 0 {
			return Nil, nil, fmt.Errorf("value: decode ref: bad varint")
		}
		return Ref(oid.OID(u)), buf[n:], nil
	case KindTime:
		u, n := binary.Uvarint(buf)
		if n <= 0 {
			return Nil, nil, fmt.Errorf("value: decode time: bad varint")
		}
		return Time(u), buf[n:], nil
	case KindList:
		cnt, n := binary.Uvarint(buf)
		if n <= 0 {
			return Nil, nil, fmt.Errorf("value: decode list: bad varint")
		}
		buf = buf[n:]
		// The count is attacker-controlled on the wire path: every element
		// costs at least one encoded byte, so a count beyond the bytes
		// present is provably corrupt — reject it before sizing the slice.
		if cnt > uint64(len(buf)) {
			return Nil, nil, fmt.Errorf("value: decode list: count %d exceeds %d remaining bytes", cnt, len(buf))
		}
		elems := make([]Value, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			var (
				e   Value
				err error
			)
			e, buf, err = DecodeValue(buf)
			if err != nil {
				return Nil, nil, fmt.Errorf("value: decode list elem %d: %w", i, err)
			}
			elems = append(elems, e)
		}
		return List(elems...), buf, nil
	default:
		return Nil, nil, fmt.Errorf("value: decode: unknown kind %d", kind)
	}
}

// AppendType appends the binary encoding of a type descriptor.
func AppendType(buf []byte, t *Type) []byte {
	if t == nil {
		return append(buf, 0xFF)
	}
	buf = append(buf, byte(t.kind))
	switch t.kind {
	case KindRef:
		buf = binary.AppendUvarint(buf, uint64(len(t.class)))
		buf = append(buf, t.class...)
	case KindList:
		buf = AppendType(buf, t.elem)
	}
	return buf
}

// DecodeType decodes one type descriptor from the front of buf.
func DecodeType(buf []byte) (*Type, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("value: decode type: empty buffer")
	}
	if buf[0] == 0xFF {
		return nil, buf[1:], nil
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case KindNil:
		return TypeNil, buf, nil
	case KindBool:
		return TypeBool, buf, nil
	case KindInt:
		return TypeInt, buf, nil
	case KindFloat:
		return TypeFloat, buf, nil
	case KindString:
		return TypeString, buf, nil
	case KindTime:
		return TypeTime, buf, nil
	case KindRef:
		ln, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < ln {
			return nil, nil, fmt.Errorf("value: decode type ref: short buffer")
		}
		cls := string(buf[n : n+int(ln)])
		buf = buf[n+int(ln):]
		if cls == "" {
			return TypeAnyRef, buf, nil
		}
		return TypeRef(cls), buf, nil
	case KindList:
		elem, rest, err := DecodeType(buf)
		if err != nil {
			return nil, nil, err
		}
		return TypeList(elem), rest, nil
	default:
		return nil, nil, fmt.Errorf("value: decode type: unknown kind %d", kind)
	}
}
