package value

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sentinel/internal/oid"
)

func TestConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Nil, KindNil},
		{Bool(true), KindBool},
		{Int(-7), KindInt},
		{Float(3.25), KindFloat},
		{Str("hi"), KindString},
		{Ref(oid.OID(9)), KindRef},
		{Time(100), KindTime},
		{List(Int(1), Str("a")), KindList},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool(true) failed")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Error("AsInt(-7) failed")
	}
	if f, ok := Float(3.25).AsFloat(); !ok || f != 3.25 {
		t.Error("AsFloat(3.25) failed")
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Error("AsString failed")
	}
	if r, ok := Ref(9).AsRef(); !ok || r != 9 {
		t.Error("AsRef failed")
	}
	if ts, ok := Time(100).AsTime(); !ok || ts != 100 {
		t.Error("AsTime failed")
	}
	if l, ok := List(Int(1)).AsList(); !ok || len(l) != 1 {
		t.Error("AsList failed")
	}
	// Cross-kind accessors fail.
	if _, ok := Int(1).AsBool(); ok {
		t.Error("Int.AsBool should fail")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Error("Str.AsInt should fail")
	}
}

func TestMustAccessorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInt on a string did not panic")
		}
	}()
	Str("x").MustInt()
}

func TestNumericWidening(t *testing.T) {
	if f, ok := Int(4).Numeric(); !ok || f != 4.0 {
		t.Errorf("Int(4).Numeric() = %v, %v", f, ok)
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Errorf("Float(2.5).Numeric() = %v, %v", f, ok)
	}
	if _, ok := Str("4").Numeric(); ok {
		t.Error("Str.Numeric() should fail")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("3 != 3.0")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 == 3.5")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("3 == \"3\"")
	}
	if !List(Int(1), Int(2)).Equal(List(Float(1), Int(2))) {
		t.Error("[1,2] != [1.0,2]")
	}
	if List(Int(1)).Equal(List(Int(1), Int(2))) {
		t.Error("[1] == [1,2]")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int // sign
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{List(Int(1)), List(Int(1), Int(0)), -1},
		{List(Int(2)), List(Int(1), Int(9)), 1},
		{Time(5), Time(9), -1},
		{Ref(3), Ref(3), 0},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return sign(va.Compare(vb)) == -sign(vb.Compare(va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Float(a), Float(b)
		return sign(va.Compare(vb)) == -sign(vb.Compare(va))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualReflexiveProperty(t *testing.T) {
	f := func(s string, i int64, fl float64) bool {
		if math.IsNaN(fl) {
			return true
		}
		vs := []Value{Str(s), Int(i), Float(fl), List(Str(s), Int(i))}
		for _, v := range vs {
			if !v.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Bool(true), Int(1), Int(-1), Float(0.1), Str("x"), Ref(1), Time(0), List(Int(0))}
	falsy := []Value{Nil, Bool(false), Int(0), Float(0), Str(""), List()}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestAppend(t *testing.T) {
	l := List(Int(1))
	l2 := l.Append(Int(2))
	if got, _ := l.AsList(); len(got) != 1 {
		t.Error("Append mutated the original list")
	}
	if got, _ := l2.AsList(); len(got) != 2 || !got[1].Equal(Int(2)) {
		t.Errorf("Append result wrong: %v", l2)
	}
	// Appending to nil yields a singleton list.
	n := Nil.Append(Str("a"))
	if got, _ := n.AsList(); len(got) != 1 {
		t.Errorf("Nil.Append = %v", n)
	}
}

func TestAppendPanicsOnScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append on an int did not panic")
		}
	}()
	Int(1).Append(Int(2))
}

func TestString(t *testing.T) {
	cases := map[string]Value{
		"nil":        Nil,
		"true":       Bool(true),
		"-3":         Int(-3),
		"2.5":        Float(2.5),
		`"hi"`:       Str("hi"),
		"oid:4":      Ref(4),
		"t9":         Time(9),
		"[1, \"a\"]": List(Int(1), Str("a")),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNil: "nil", KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindRef: "ref", KindTime: "time", KindList: "list",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}

func TestSortRefs(t *testing.T) {
	refs := []oid.OID{5, 1, 9, 3}
	SortRefs(refs)
	for i := 1; i < len(refs); i++ {
		if refs[i-1] > refs[i] {
			t.Fatalf("not sorted: %v", refs)
		}
	}
}
