// Package value implements the dynamic value system used for object
// attributes, method parameters, and event parameters throughout the
// database.
//
// Sentinel objects are instances of runtime-defined classes, so attribute
// values cannot be static Go types; Value is a small tagged union covering
// the types the paper's examples use (ints, floats, strings, booleans,
// object references, timestamps) plus lists. Values are immutable: mutating
// an attribute replaces the Value stored in the slot.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sentinel/internal/oid"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The value kinds.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindRef  // reference to another object, by OID
	KindTime // logical timestamp
	KindList
)

// String returns the lower-case name of the kind ("int", "ref", ...).
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindRef:
		return "ref"
	case KindTime:
		return "time"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed database value. The zero Value is Nil.
type Value struct {
	kind Kind
	num  uint64 // bool, int, float (bits), ref, time
	str  string
	list []Value
}

// Nil is the null value.
var Nil = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: floatBits(f)} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(s string) Value { return Value{kind: KindString, str: s} }

// Str is an alias for String_ and the preferred constructor name.
func Str(s string) Value { return String_(s) }

// Ref returns an object-reference value.
func Ref(o oid.OID) Value { return Value{kind: KindRef, num: uint64(o)} }

// Time returns a logical-timestamp value.
func Time(t uint64) Value { return Value{kind: KindTime, num: t} }

// List returns a list value holding the given elements. The slice is not
// copied; callers must not mutate it afterwards.
func List(elems ...Value) Value { return Value{kind: KindList, list: elems} }

// Kind returns the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is the null value.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsBool returns the boolean payload; ok is false if the kind differs.
func (v Value) AsBool() (b bool, ok bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.num != 0, true
}

// AsInt returns the integer payload; ok is false if the kind differs.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return int64(v.num), true
}

// AsFloat returns the float payload; ok is false if the kind differs.
func (v Value) AsFloat() (float64, bool) {
	if v.kind != KindFloat {
		return 0, false
	}
	return floatFromBits(v.num), true
}

// AsString returns the string payload; ok is false if the kind differs.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsRef returns the OID payload; ok is false if the kind differs.
func (v Value) AsRef() (oid.OID, bool) {
	if v.kind != KindRef {
		return oid.Nil, false
	}
	return oid.OID(v.num), true
}

// AsTime returns the timestamp payload; ok is false if the kind differs.
func (v Value) AsTime() (uint64, bool) {
	if v.kind != KindTime {
		return 0, false
	}
	return v.num, true
}

// AsList returns the list payload; ok is false if the kind differs. The
// returned slice must not be mutated.
func (v Value) AsList() ([]Value, bool) {
	if v.kind != KindList {
		return nil, false
	}
	return v.list, true
}

// MustBool is AsBool that panics on kind mismatch; for tests and internal
// call sites that have already type-checked.
func (v Value) MustBool() bool { b, ok := v.AsBool(); mustOK(ok, v, KindBool); return b }

// MustInt is AsInt that panics on kind mismatch.
func (v Value) MustInt() int64 { i, ok := v.AsInt(); mustOK(ok, v, KindInt); return i }

// MustFloat is AsFloat that panics on kind mismatch.
func (v Value) MustFloat() float64 { f, ok := v.AsFloat(); mustOK(ok, v, KindFloat); return f }

// MustString is AsString that panics on kind mismatch.
func (v Value) MustString() string { s, ok := v.AsString(); mustOK(ok, v, KindString); return s }

// MustRef is AsRef that panics on kind mismatch.
func (v Value) MustRef() oid.OID { r, ok := v.AsRef(); mustOK(ok, v, KindRef); return r }

func mustOK(ok bool, v Value, want Kind) {
	if !ok {
		panic(fmt.Sprintf("value: %s is not %s", v.kind, want))
	}
}

// Numeric reports whether the value is an int or a float, and returns it
// widened to float64.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num)), true
	case KindFloat:
		return floatFromBits(v.num), true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a condition: non-false
// bool, non-zero number, non-empty string or list, non-nil ref. Nil is false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNil:
		return false
	case KindBool:
		return v.num != 0
	case KindInt:
		return int64(v.num) != 0
	case KindFloat:
		return floatFromBits(v.num) != 0
	case KindString:
		return v.str != ""
	case KindRef:
		return oid.OID(v.num) != oid.Nil
	case KindTime:
		return true
	case KindList:
		return len(v.list) > 0
	default:
		return false
	}
}

// Equal reports deep equality. Int and Float compare equal across kinds when
// numerically equal (3 == 3.0), matching the expression language.
func (v Value) Equal(w Value) bool {
	if (v.kind == KindInt || v.kind == KindFloat) && (w.kind == KindInt || w.kind == KindFloat) {
		a, _ := v.Numeric()
		b, _ := w.Numeric()
		return a == b
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindString:
		return v.str == w.str
	case KindList:
		if len(v.list) != len(w.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(w.list[i]) {
				return false
			}
		}
		return true
	default:
		return v.num == w.num
	}
}

// Compare orders two values. It returns a negative, zero, or positive int
// like strings.Compare. Values of different kinds order by kind; numbers
// compare numerically across int/float. Comparing lists compares
// element-wise. The error is non-nil for incomparable kinds paired together
// only when strict ordering is impossible (never, currently — kind order is
// the fallback), so callers may ignore it; it exists for future richer types.
func (v Value) Compare(w Value) int {
	vn, vNum := v.Numeric()
	wn, wNum := w.Numeric()
	if vNum && wNum {
		switch {
		case vn < wn:
			return -1
		case vn > wn:
			return 1
		default:
			return 0
		}
	}
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindNil:
		return 0
	case KindString:
		return strings.Compare(v.str, w.str)
	case KindList:
		n := min(len(v.list), len(w.list))
		for i := 0; i < n; i++ {
			if c := v.list[i].Compare(w.list[i]); c != 0 {
				return c
			}
		}
		return len(v.list) - len(w.list)
	default:
		switch {
		case v.num < w.num:
			return -1
		case v.num > w.num:
			return 1
		default:
			return 0
		}
	}
}

// String renders the value for debugging and the shell.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(floatFromBits(v.num), 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindRef:
		return oid.OID(v.num).String()
	case KindTime:
		return "t" + strconv.FormatUint(v.num, 10)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.kind))
	}
}

// Append returns a new list value with elem appended. It panics if v is not
// a list or nil (nil is treated as the empty list).
func (v Value) Append(elem Value) Value {
	switch v.kind {
	case KindNil:
		return List(elem)
	case KindList:
		out := make([]Value, len(v.list)+1)
		copy(out, v.list)
		out[len(v.list)] = elem
		return Value{kind: KindList, list: out}
	default:
		panic(fmt.Sprintf("value: Append on %s", v.kind))
	}
}

// SortRefs sorts a slice of OIDs in place; a helper for deterministic
// iteration over reference sets.
func SortRefs(refs []oid.OID) {
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
}
