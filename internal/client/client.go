// Package client is the minimal Go client for sentinel-server's wire
// protocol, used by the shell (.connect), the replication follower, the
// tests, and the benchmarks.
//
// Every blocking method takes a context.Context: the context bounds that
// one call (dial, request/response round-trip), and cancelling it abandons
// the call without leaking its futures-map entry — the response, if it
// later arrives, is dropped on the floor. Cancellation is per-call, not
// per-connection: the transport stays usable after an abandoned call.
//
// Calls pipeline: Go* methods send without waiting and return a Call whose
// wait blocks for that request's response, matched by request id. Two
// goroutines drive the connection — a writer coalescing queued frames into
// single flushes, and a reader dispatching responses to their Calls and
// push frames to subscription handlers — so N in-flight calls cost N
// channel slots, not N goroutines.
//
// Push handlers run on the reader goroutine: keep them short and never
// call back into the Client's blocking methods from one (Wait from a
// handler deadlocks the reader against itself).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"sentinel/internal/oid"
	"sentinel/internal/value"
	"sentinel/internal/wire"
)

// ErrClosed reports a call against a closed (or transport-failed) client.
var ErrClosed = errors.New("client: connection closed")

// ErrPrimaryLost wraps the transport error when a connection that was
// streaming replication dies: callers (the follower's reconnect loop, admin
// tooling deciding whether to promote) can errors.Is for it instead of
// pattern-matching transport strings.
var ErrPrimaryLost = errors.New("client: primary connection lost")

// outQueueLen bounds the writer queue; senders block when it fills (the
// transport is the limit, more buffering would just hide it).
const outQueueLen = 256

// Client is one connection to a sentinel-server.
type Client struct {
	conn net.Conn

	out  chan wire.Frame
	done chan struct{}

	mu        sync.Mutex
	reqSeq    uint32
	pending   map[uint32]*Call
	handlers  map[uint64]func(wire.Event)
	orphans    map[uint64][]wire.Event // pushes that raced their SubOK
	orphanCnt  int
	closeErr   error
	closing    bool
	replStream bool // set by ReplHello: transport loss means a lost primary

	// rawPush receives non-OpEvent pushes (the replication stream). Set
	// once via OnPush before any replication traffic; read on the reader
	// goroutine without locking thereafter.
	rawPush func(op byte, payload []byte)

	closeOnce sync.Once
	wg        sync.WaitGroup

	// SessionID is the server-assigned session id from the handshake.
	SessionID uint64
}

// result is a completed call: the response frame (payload owned by the
// call) or a transport error.
type result struct {
	f   wire.Frame
	err error
}

// Call is one in-flight request.
type Call struct {
	c  *Client
	id uint32
	ch chan result
}

// wait blocks for the response frame or the context. An abandoned call is
// unregistered from the pending map immediately: a response racing the
// cancellation lands in the call's one-slot buffer and is garbage-collected
// with it, so cancellation never leaks map entries or frames.
func (call *Call) wait(ctx context.Context) (wire.Frame, error) {
	select {
	case r := <-call.ch:
		return r.f, r.err
	case <-ctx.Done():
		call.c.abandon(call.id)
		return wire.Frame{}, ctx.Err()
	}
}

// Wait blocks for the response of a pipelined Go* call.
func (call *Call) Wait(ctx context.Context) (wire.Frame, error) { return call.wait(ctx) }

// abandon forgets an in-flight call after its waiter gave up.
func (c *Client) abandon(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Dial connects and performs the version handshake; ctx bounds both.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		out:      make(chan wire.Frame, outQueueLen),
		done:     make(chan struct{}),
		pending:  make(map[uint32]*Call),
		handlers: make(map[uint64]func(wire.Event)),
		orphans:  make(map[uint64][]wire.Event),
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	f, err := c.start(ctx, wire.OpHello, wire.AppendValues(nil, value.Int(wire.ProtocolVersion))).wait(ctx)
	if err != nil {
		c.Close()
		return nil, err
	}
	if f.Op != wire.OpWelcome {
		c.Close()
		return nil, fmt.Errorf("client: handshake rejected: %s", respErr(f))
	}
	vals, err := wire.DecodeValues(f.Payload, 2)
	if err != nil {
		c.Close()
		return nil, err
	}
	sid, _ := vals[1].AsInt()
	c.SessionID = uint64(sid)
	return c, nil
}

// DialRetry dials with jittered exponential backoff (50ms doubling to
// maxBackoff, each sleep randomized ±50%) until it connects or ctx is
// cancelled. The replication follower runs its reconnect loop on this;
// anything needing a patient dial can share it. The jitter matters exactly
// when the dial matters most: after a primary failure every follower starts
// retrying at once, and unjittered backoff keeps them retrying in lockstep
// against the freshly promoted (or restarted) primary.
func DialRetry(ctx context.Context, addr string, maxBackoff time.Duration) (*Client, error) {
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	backoff := 50 * time.Millisecond
	for {
		c, err := Dial(ctx, addr)
		if err == nil {
			return c, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// jitter spreads d over [d/2, 3d/2): full ±50%, so two followers that lost
// the same primary at the same instant decorrelate within one retry round.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Close tears the connection down; every in-flight call fails with
// ErrClosed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	c.wg.Wait()
	return nil
}

// Done is closed when the connection dies (remote close, transport error,
// or Close). The follower's apply loop selects on it to notice a lost
// primary without a read in flight.
func (c *Client) Done() <-chan struct{} { return c.done }

// Err returns the error that tore the connection down, once Done is
// closed: ErrClosed for a local Close, or the transport error (wrapped in
// ErrPrimaryLost for a replication stream) otherwise. Nil while the
// connection is alive.
func (c *Client) Err() error {
	select {
	case <-c.done:
	default:
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeErr
}

// fail closes the transport once and completes all pending calls with err.
func (c *Client) fail(err error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closing = true
		if c.replStream && !errors.Is(err, ErrClosed) {
			err = fmt.Errorf("%w: %v", ErrPrimaryLost, err)
		}
		c.closeErr = err
		pend := c.pending
		c.pending = make(map[uint32]*Call)
		c.mu.Unlock()
		close(c.done)
		c.conn.Close()
		for _, call := range pend {
			call.ch <- result{err: err}
		}
	})
}

// start registers a Call and enqueues its request frame. The returned Call
// always completes: on transport death it yields the close error, on
// context cancellation (while the out-queue is full) the context error.
func (c *Client) start(ctx context.Context, op byte, payload []byte) *Call {
	call := &Call{c: c, ch: make(chan result, 1)}
	c.mu.Lock()
	if c.closing {
		err := c.closeErr
		c.mu.Unlock()
		call.ch <- result{err: err}
		return call
	}
	c.reqSeq++
	if c.reqSeq == 0 { // 0 is the push id; skip it on wraparound
		c.reqSeq = 1
	}
	call.id = c.reqSeq
	c.pending[call.id] = call
	c.mu.Unlock()
	select {
	case c.out <- wire.Frame{Op: op, ReqID: call.id, Payload: payload}:
	case <-c.done:
		// fail() already completed (or will complete) this call.
	case <-ctx.Done():
		c.abandon(call.id)
		call.ch <- result{err: ctx.Err()}
	}
	return call
}

// writeLoop drains the out-queue, coalescing pending frames per flush.
func (c *Client) writeLoop() {
	defer c.wg.Done()
	bw := newWriter(c.conn)
	var buf []byte
	for {
		var f wire.Frame
		select {
		case f = <-c.out:
		case <-c.done:
			return
		}
		for {
			var err error
			buf, err = wire.WriteFrame(bw, buf, f)
			if err != nil {
				c.fail(err)
				return
			}
			select {
			case f = <-c.out:
				continue
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			c.fail(err)
			return
		}
	}
}

// readLoop dispatches responses to pending calls and pushes to handlers.
func (c *Client) readLoop() {
	defer c.wg.Done()
	br := newReader(c.conn)
	var scratch []byte
	for {
		var (
			f   wire.Frame
			err error
		)
		f, scratch, err = wire.ReadFrame(br, scratch)
		if err != nil {
			c.fail(fmt.Errorf("client: transport: %w", err))
			return
		}
		if f.ReqID == 0 {
			if f.Op == wire.OpEvent {
				c.dispatchEvent(f.Payload)
			} else if h := c.rawPush; h != nil {
				h(f.Op, f.Payload)
			}
			continue
		}
		c.mu.Lock()
		call := c.pending[f.ReqID]
		delete(c.pending, f.ReqID)
		c.mu.Unlock()
		if call == nil {
			continue // response to an abandoned or already-failed request
		}
		// The payload aliases the read scratch; the call owns its copy.
		owned := wire.Frame{Op: f.Op, ReqID: f.ReqID, Payload: append([]byte(nil), f.Payload...)}
		call.ch <- result{f: owned}
	}
}

// orphanCap bounds pushes buffered for subscriptions whose SubOK has not
// been processed yet (a push can overtake its own subscription's response
// when a commit lands in between). Beyond it, oldest-sub orphans drop.
const orphanCap = 1024

// dispatchEvent routes one push to its handler, or buffers it while the
// subscription's SubOK is still in flight.
func (c *Client) dispatchEvent(payload []byte) {
	ev, err := wire.DecodeEvent(payload)
	if err != nil {
		return // malformed push: drop, the protocol stream itself is intact
	}
	c.mu.Lock()
	h := c.handlers[ev.SubID]
	if h == nil && !c.closing {
		if c.orphanCnt < orphanCap {
			c.orphans[ev.SubID] = append(c.orphans[ev.SubID], ev)
			c.orphanCnt++
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if h != nil {
		h(ev)
	}
}

// OnPush installs the raw handler for non-OpEvent pushes (the replication
// stream: OpReplFrames, OpReplSnap, OpReplSnapEnd). Must be set before the
// traffic it handles can arrive (i.e. before ReplHello); the handler runs
// on the reader goroutine and its payload is only valid for the duration of
// the call.
func (c *Client) OnPush(h func(op byte, payload []byte)) { c.rawPush = h }

// respErr renders a non-OK response as an error.
func respErr(f wire.Frame) error {
	if f.Op == wire.OpErr {
		return errors.New(wire.DecodeErr(f.Payload))
	}
	return fmt.Errorf("unexpected response %s", wire.OpName(f.Op))
}

// ---- typed calls (each has a Go* pipelined form and a blocking form) ----

// GoPing starts a ping.
func (c *Client) GoPing(ctx context.Context) *Call { return c.start(ctx, wire.OpPing, nil) }

// Ping round-trips a no-op frame.
func (c *Client) Ping(ctx context.Context) error {
	f, err := c.GoPing(ctx).wait(ctx)
	if err != nil {
		return err
	}
	if f.Op != wire.OpPong {
		return respErr(f)
	}
	return nil
}

// GoExec starts a script execution.
func (c *Client) GoExec(ctx context.Context, src string) *Call {
	return c.start(ctx, wire.OpExec, wire.AppendValues(nil, value.Str(src)))
}

// Exec runs a SentinelQL script in its own server-side transaction.
func (c *Client) Exec(ctx context.Context, src string) error {
	f, err := c.GoExec(ctx, src).wait(ctx)
	if err != nil {
		return err
	}
	if f.Op != wire.OpOK {
		return respErr(f)
	}
	return nil
}

// GoEval starts an expression evaluation.
func (c *Client) GoEval(ctx context.Context, src string) *Call {
	return c.start(ctx, wire.OpEval, wire.AppendValues(nil, value.Str(src)))
}

// Eval evaluates a SentinelQL expression and returns its value.
func (c *Client) Eval(ctx context.Context, src string) (value.Value, error) {
	return resultValue(c.GoEval(ctx, src).wait(ctx))
}

// GoLookup starts a name lookup.
func (c *Client) GoLookup(ctx context.Context, name string) *Call {
	return c.start(ctx, wire.OpLookup, wire.AppendValues(nil, value.Str(name)))
}

// Lookup resolves a bound name to its OID.
func (c *Client) Lookup(ctx context.Context, name string) (oid.OID, bool, error) {
	v, err := resultValue(c.GoLookup(ctx, name).wait(ctx))
	if err != nil {
		return oid.Nil, false, err
	}
	id, ok := v.AsRef()
	return id, ok, nil
}

// GoGet starts a snapshot attribute read.
func (c *Client) GoGet(ctx context.Context, id oid.OID, attr string) *Call {
	return c.start(ctx, wire.OpGet, wire.AppendValues(nil, value.Ref(id), value.Str(attr)))
}

// Get reads one attribute from a server-side MVCC snapshot.
func (c *Client) Get(ctx context.Context, id oid.OID, attr string) (value.Value, error) {
	return resultValue(c.GoGet(ctx, id, attr).wait(ctx))
}

// GetCall completes a GoGet (exported for pipelined callers).
func (c *Client) GetCall(ctx context.Context, call *Call) (value.Value, error) {
	return resultValue(call.wait(ctx))
}

// Instances lists the live instances of a class (snapshot read).
func (c *Client) Instances(ctx context.Context, class string) ([]oid.OID, error) {
	v, err := resultValue(c.start(ctx, wire.OpInstances, wire.AppendValues(nil, value.Str(class))).wait(ctx))
	if err != nil {
		return nil, err
	}
	lst, ok := v.AsList()
	if !ok {
		return nil, errors.New("client: INSTANCES result is not a list")
	}
	ids := make([]oid.OID, 0, len(lst))
	for _, e := range lst {
		if id, ok := e.AsRef(); ok {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// resultValue unwraps an OpResult response.
func resultValue(f wire.Frame, err error) (value.Value, error) {
	if err != nil {
		return value.Nil, err
	}
	if f.Op != wire.OpResult {
		return value.Nil, respErr(f)
	}
	vals, err := wire.DecodeValues(f.Payload, 1)
	if err != nil {
		return value.Nil, err
	}
	return vals[0], nil
}

// Subscribe registers for pushes of the object's occurrences. method ""
// matches every event the object generates; moment wire.MomentAny matches
// every moment. handler runs on the reader goroutine for each delivered
// event — including any that arrived while the subscription's own
// confirmation was still in flight.
func (c *Client) Subscribe(ctx context.Context, id oid.OID, method string, moment uint8, handler func(wire.Event)) (uint64, error) {
	if handler == nil {
		return 0, errors.New("client: nil handler")
	}
	f, err := c.start(ctx, wire.OpSubscribe,
		wire.AppendValues(nil, value.Ref(id), value.Str(method), value.Int(int64(moment)))).wait(ctx)
	if err != nil {
		return 0, err
	}
	if f.Op != wire.OpSubOK {
		return 0, respErr(f)
	}
	vals, err := wire.DecodeValues(f.Payload, 1)
	if err != nil {
		return 0, err
	}
	sid, _ := vals[0].AsInt()
	subID := uint64(sid)
	// Install the handler and replay pushes that overtook the SubOK. Both
	// under mu, so an event is either replayed here or dispatched directly
	// by the reader — never both, never lost.
	c.mu.Lock()
	replay := c.orphans[subID]
	delete(c.orphans, subID)
	c.orphanCnt -= len(replay)
	c.handlers[subID] = handler
	c.mu.Unlock()
	for _, ev := range replay {
		handler(ev)
	}
	return subID, nil
}

// Unsubscribe releases a subscription.
func (c *Client) Unsubscribe(ctx context.Context, subID uint64) error {
	f, err := c.start(ctx, wire.OpUnsubscribe, wire.AppendValues(nil, value.Int(int64(subID)))).wait(ctx)
	if err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.handlers, subID)
	c.mu.Unlock()
	if f.Op != wire.OpOK {
		return respErr(f)
	}
	return nil
}

// ---- replication calls (used by internal/repl's follower) ----

// ReplHello asks the primary to start shipping from startLSN+1. epoch is
// the primary epoch the follower stored with its data (0 = none). The
// primary answers with its own epoch, its shipped LSN, and whether the
// follower must install a fresh base state first (epoch mismatch, or
// startLSN outside what the primary can serve incrementally).
func (c *Client) ReplHello(ctx context.Context, startLSN, epoch uint64) (primaryEpoch, shippedLSN uint64, needBase bool, err error) {
	c.mu.Lock()
	c.replStream = true
	c.mu.Unlock()
	f, err := c.start(ctx, wire.OpReplHello,
		wire.AppendValues(nil, value.Int(int64(startLSN)), value.Int(int64(epoch)))).wait(ctx)
	if err != nil {
		return 0, 0, false, err
	}
	if f.Op != wire.OpReplWelcome {
		return 0, 0, false, respErr(f)
	}
	vals, err := wire.DecodeValues(f.Payload, 3)
	if err != nil {
		return 0, 0, false, err
	}
	pe, _ := vals[0].AsInt()
	sl, _ := vals[1].AsInt()
	nb, _ := vals[2].AsInt()
	return uint64(pe), uint64(sl), nb != 0, nil
}

// ReplAck reports the follower's applied LSN (and the epoch it applied
// under) for the primary's lag accounting and quorum commit. A follower
// still on an older epoch acks with that epoch; the primary counts only
// current-epoch acks toward a quorum.
func (c *Client) ReplAck(ctx context.Context, appliedLSN, epoch uint64) error {
	f, err := c.start(ctx, wire.OpReplAck,
		wire.AppendValues(nil, value.Int(int64(appliedLSN)), value.Int(int64(epoch)))).wait(ctx)
	if err != nil {
		return err
	}
	if f.Op != wire.OpOK {
		return respErr(f)
	}
	return nil
}

// ReplPromote asks a follower server to promote itself to primary (admin
// operation; the server must have been started with a promote hook).
func (c *Client) ReplPromote(ctx context.Context) error {
	f, err := c.start(ctx, wire.OpReplPromote, nil).wait(ctx)
	if err != nil {
		return err
	}
	if f.Op != wire.OpOK {
		return respErr(f)
	}
	return nil
}

// ReplFence tells a primary server that newEpoch exists: if it is newer
// than the primary's own epoch the primary fences itself (every subsequent
// local commit fails with core.ErrFenced). Idempotent; an older or equal
// epoch is a no-op.
func (c *Client) ReplFence(ctx context.Context, newEpoch uint64) error {
	f, err := c.start(ctx, wire.OpReplFence, wire.AppendValues(nil, value.Int(int64(newEpoch)))).wait(ctx)
	if err != nil {
		return err
	}
	if f.Op != wire.OpOK {
		return respErr(f)
	}
	return nil
}
