package client

import (
	"bufio"
	"io"
)

// connBufSize sizes the connection's read and write buffers. Small, for
// the same reason as the server's: benches open thousands of client
// connections in one process.
const connBufSize = 1024

func newReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, connBufSize) }
func newWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, connBufSize) }
