package client

import (
	"testing"
	"time"
)

// TestJitterBounds pins the ±50% spread: every draw must land in
// [d/2, 3d/2), and the draws must actually spread out — a constant-valued
// "jitter" (the regression this guards against: thundering-herd reconnects
// after a primary failure) fails the distinct-values check.
func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	lo, hi := d/2, d+d/2
	distinct := map[time.Duration]bool{}
	var below, above bool
	for i := 0; i < 10000; i++ {
		got := jitter(d)
		if got < lo || got >= hi {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v)", d, got, lo, hi)
		}
		distinct[got] = true
		if got < d {
			below = true
		}
		if got > d {
			above = true
		}
	}
	if len(distinct) < 100 {
		t.Fatalf("jitter produced only %d distinct values over 10000 draws", len(distinct))
	}
	if !below || !above {
		t.Fatalf("jitter never crossed the midpoint (below=%v above=%v): not centered on d", below, above)
	}
}

// TestJitterDegenerate pins the zero/negative passthrough: DialRetry never
// sleeps a negative duration even if a caller hands it one.
func TestJitterDegenerate(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		if got := jitter(d); got != d {
			t.Fatalf("jitter(%v) = %v, want passthrough", d, got)
		}
	}
}
