// Package buffer implements a fixed-capacity buffer pool over a page file,
// with pin counting, dirty tracking, and clock (second-chance) eviction.
package buffer

import (
	"fmt"
	"os"
	"sync"

	"sentinel/internal/page"
	"sentinel/internal/vfs"
)

// PageFile is the backing store the pool reads and writes pages through.
type PageFile interface {
	ReadPage(id page.ID, buf []byte) error
	WritePage(id page.ID, buf []byte) error
	NumPages() page.ID
	AllocPage() (page.ID, error)
	Sync() error
}

// File is the default PageFile over a vfs.File.
type File struct {
	f     vfs.File
	pages page.ID
}

// OpenFile opens (creating if needed) a page file at path on the OS
// filesystem.
func OpenFile(path string) (*File, error) {
	return OpenFileOn(vfs.OS, path)
}

// OpenFileOn opens (creating if needed) a page file at path on fs.
func OpenFileOn(fs vfs.FS, path string) (*File, error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("buffer: open page file: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("buffer: stat page file: %w", err)
	}
	if size%page.Size != 0 {
		f.Close()
		return nil, fmt.Errorf("buffer: page file %s has size %d, not a multiple of %d",
			path, size, page.Size)
	}
	return &File{f: f, pages: page.ID(size / page.Size)}, nil
}

// ReadPage reads page id into buf.
func (pf *File) ReadPage(id page.ID, buf []byte) error {
	_, err := pf.f.ReadAt(buf, int64(id)*page.Size)
	if err != nil {
		return fmt.Errorf("buffer: read page %d: %w", id, err)
	}
	return nil
}

// WritePage writes buf to page id.
func (pf *File) WritePage(id page.ID, buf []byte) error {
	_, err := pf.f.WriteAt(buf, int64(id)*page.Size)
	if err != nil {
		return fmt.Errorf("buffer: write page %d: %w", id, err)
	}
	return nil
}

// NumPages returns the number of allocated pages.
func (pf *File) NumPages() page.ID { return pf.pages }

// AllocPage extends the file by one zeroed page and returns its id.
func (pf *File) AllocPage() (page.ID, error) {
	id := pf.pages
	zero := make([]byte, page.Size)
	page.Wrap(zero).Init()
	if err := pf.WritePage(id, zero); err != nil {
		return 0, err
	}
	pf.pages++
	return id, nil
}

// Sync flushes the file to stable storage.
func (pf *File) Sync() error { return pf.f.Sync() }

// Close closes the file.
func (pf *File) Close() error { return pf.f.Close() }

type frame struct {
	id     page.ID
	buf    []byte
	pins   int
	dirty  bool
	ref    bool // clock reference bit
	loaded bool
}

// Pool is the buffer pool. All methods are safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	pf     PageFile
	frames []*frame
	index  map[page.ID]int // page id -> frame index

	// Stats
	hits, misses, evictions uint64
}

// NewPool creates a pool with the given number of frames (minimum 4).
func NewPool(pf PageFile, capacity int) *Pool {
	if capacity < 4 {
		capacity = 4
	}
	p := &Pool{pf: pf, index: make(map[page.ID]int, capacity)}
	p.frames = make([]*frame, capacity)
	for i := range p.frames {
		p.frames[i] = &frame{buf: make([]byte, page.Size)}
	}
	return p
}

// Stats returns (hits, misses, evictions).
func (p *Pool) Stats() (hits, misses, evictions uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// Pin fetches the page into the pool and pins it, returning the wrapped
// page. The caller must Unpin it (marking dirty if modified).
func (p *Pool) Pin(id page.ID) (*page.Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fi, ok := p.index[id]; ok {
		f := p.frames[fi]
		f.pins++
		f.ref = true
		p.hits++
		return page.Wrap(f.buf), nil
	}
	p.misses++
	fi, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	f := p.frames[fi]
	if f.loaded {
		if f.dirty {
			if err := p.pf.WritePage(f.id, f.buf); err != nil {
				return nil, err
			}
		}
		delete(p.index, f.id)
		p.evictions++
	}
	if err := p.pf.ReadPage(id, f.buf); err != nil {
		f.loaded = false
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.ref = true
	f.loaded = true
	p.index[id] = fi
	return page.Wrap(f.buf), nil
}

// Unpin releases one pin; dirty marks the page modified.
func (p *Pool) Unpin(id page.ID, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fi, ok := p.index[id]
	if !ok {
		return
	}
	f := p.frames[fi]
	if f.pins > 0 {
		f.pins--
	}
	if dirty {
		f.dirty = true
	}
}

// victimLocked finds an unpinned frame by the clock algorithm.
func (p *Pool) victimLocked() (int, error) {
	// First pass: any unloaded frame.
	for i, f := range p.frames {
		if !f.loaded {
			return i, nil
		}
	}
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		i := sweep % len(p.frames)
		f := p.frames[i]
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return i, nil
	}
	// Final pass ignoring reference bits.
	for i, f := range p.frames {
		if f.pins == 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("buffer: all %d frames pinned", len(p.frames))
}

// FlushAll writes every dirty page back and syncs the page file.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.loaded && f.dirty {
			if err := p.pf.WritePage(f.id, f.buf); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return p.pf.Sync()
}

// Alloc extends the backing file by one page.
func (p *Pool) Alloc() (page.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pf.AllocPage()
}

// NumPages returns the number of pages in the backing file.
func (p *Pool) NumPages() page.ID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pf.NumPages()
}
