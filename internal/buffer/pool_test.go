package buffer

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sentinel/internal/page"
)

func openTempFile(t *testing.T) *File {
	t.Helper()
	pf, err := OpenFile(filepath.Join(t.TempDir(), "pages.dat"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestFileAllocReadWrite(t *testing.T) {
	pf := openTempFile(t)
	if pf.NumPages() != 0 {
		t.Fatal("fresh file has pages")
	}
	id, err := pf.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || pf.NumPages() != 1 {
		t.Fatalf("alloc: id=%d pages=%d", id, pf.NumPages())
	}
	buf := make([]byte, page.Size)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := pf.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, page.Size)
	if err := pf.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read != write")
	}
}

func TestPoolHitMiss(t *testing.T) {
	pf := openTempFile(t)
	pool := NewPool(pf, 8)
	id, _ := pool.Alloc()
	if _, err := pool.Pin(id); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, false)
	if _, err := pool.Pin(id); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, false)
	hits, misses, _ := pool.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	pf := openTempFile(t)
	pool := NewPool(pf, 4)
	// Create 12 pages, write a distinct marker into each through the pool.
	var ids []page.ID
	for i := 0; i < 12; i++ {
		id, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		pg, err := pool.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		pg.Init()
		if _, ok := pg.Insert([]byte(fmt.Sprintf("marker-%d", i))); !ok {
			t.Fatal("insert failed")
		}
		pool.Unpin(id, true)
	}
	// Everything must read back correctly even though only 4 frames exist.
	for i, id := range ids {
		pg, err := pool.Pin(id)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := pg.Read(0)
		if !ok || string(rec) != fmt.Sprintf("marker-%d", i) {
			t.Fatalf("page %d: %q, %v", id, rec, ok)
		}
		pool.Unpin(id, false)
	}
	_, _, evictions := pool.Stats()
	if evictions == 0 {
		t.Fatal("expected evictions with 4 frames and 12 pages")
	}
}

func TestAllFramesPinnedErrors(t *testing.T) {
	pf := openTempFile(t)
	pool := NewPool(pf, 4)
	for i := 0; i < 4; i++ {
		id, _ := pool.Alloc()
		if _, err := pool.Pin(id); err != nil {
			t.Fatal(err)
		}
	}
	extra, _ := pool.Alloc()
	if _, err := pool.Pin(extra); err == nil {
		t.Fatal("pinning a 5th page with 4 pinned frames should fail")
	}
}

func TestFlushAllPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.dat")
	pf, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(pf, 4)
	id, _ := pool.Alloc()
	pg, _ := pool.Pin(id)
	pg.Init()
	pg.Insert([]byte("durable"))
	pool.Unpin(id, true)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	pf2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	buf := make([]byte, page.Size)
	if err := pf2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	rec, ok := page.Wrap(buf).Read(0)
	if !ok || string(rec) != "durable" {
		t.Fatalf("after reopen: %q, %v", rec, ok)
	}
}

func TestOpenRejectsMisalignedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.dat")
	if err := os.WriteFile(path, make([]byte, page.Size+10), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("misaligned file accepted")
	}
}
