package sim

import (
	"os"
	"testing"

	"sentinel/internal/vfs"
)

// TestCrashStateEnumeration is the torture sweep: every fsync-boundary
// crash point of the scripted workload, in all three crash models, must
// recover to a prefix-consistent, integrity-clean, live database. ISSUE 4
// demands at least 200 enumerated crash states with zero violations.
// -short strides the sweep for tier-1 wall time; SENTINEL_TORTURE=full
// forces the exhaustive stride-1 sweep.
func TestCrashStateEnumeration(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 7
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		stride = 1
	}
	res, err := Torture(stride)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Violations {
		if i >= 25 {
			t.Errorf("... and %d more violations", len(res.Violations)-i)
			break
		}
		t.Error(v)
	}
	if !testing.Short() && res.States < 200 {
		t.Fatalf("enumerated only %d crash states, want >= 200", res.States)
	}
	t.Logf("enumerated %d crash states (%d distinct reopens), %d violations",
		res.States, res.Reopens, len(res.Violations))
}

// TestWorkloadOracle sanity-checks the workload itself: marks are
// monotone in both schedule position and journal position, checkpoints
// land where the schedule says, and the journal is busy enough to give
// the enumerator a dense state space.
func TestWorkloadOracle(t *testing.T) {
	o, err := RunWorkload(vfs.NewFault())
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Marks) != finalV {
		t.Fatalf("%d marks, want %d", len(o.Marks), finalV)
	}
	for i, m := range o.Marks {
		if m.V != i+1 {
			t.Fatalf("mark %d has V=%d", i, m.V)
		}
		if i > 0 && m.Ops <= o.Marks[i-1].Ops {
			t.Fatalf("mark %d: ops %d not past previous %d — commits must hit storage", i, m.Ops, o.Marks[i-1].Ops)
		}
	}
	if len(o.Ckpts) != len(ckptAfter) {
		t.Fatalf("%d checkpoints, want %d", len(o.Ckpts), len(ckptAfter))
	}
	if o.XOID == 0 {
		t.Fatal("workload never recorded X's oid")
	}
	if o.TotalOps < 100 {
		t.Fatalf("only %d storage ops journaled: too sparse for a meaningful sweep", o.TotalOps)
	}
}
