package sim

import (
	"os"
	"testing"

	"sentinel/internal/vfs"
)

// TestFailoverScenario pins one cell per fault kind so a regression names
// the failing fault directly instead of hiding inside the sweep.
func TestFailoverScenario(t *testing.T) {
	for _, fault := range FailoverFaults {
		fault := fault
		t.Run(fault.String(), func(t *testing.T) {
			t.Parallel()
			res, err := FailoverScenario(3, fault, vfs.CrashSynced)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.PromotedLSN == 0 {
				t.Fatalf("promoted follower applied nothing (faultAt=%d)", res.FaultAt)
			}
		})
	}
}

// TestFailoverSweep runs the seed × fault × crash-mode matrix. The normal
// run strides the matrix down to stay inside the tier-1 budget; the
// torture run (SENTINEL_TORTURE=full, see `make torture`) covers every
// cell of 25+ seeds.
func TestFailoverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("failover sweep skipped in -short")
	}
	seeds, stride := 25, 7
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		stride = 1
	}
	res, err := FailoverSweep(seeds, stride)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	t.Logf("failover sweep: %d scenarios, %d transactions, %d violations",
		res.Scenarios, res.Steps, len(res.Violations))
}
