package sim

// Linearizability-style differential testing of the conflict-aware detached
// executor pool (core/detached.go). A scenario is replayed through the real
// engine with AsyncDetached worker pools of varying sizes; detached actions
// then run concurrently with later transactions, so a single totally-
// ordered trace no longer exists. What the pool DOES guarantee is:
//
//   - immediate and deferred firings are untouched by the pool: they still
//     form a serial trace identical to the reference model's;
//   - detached firings over the same subscriber execute in the exact order
//     the serial model predicts (the conflict scheduler chains them), while
//     firings over disjoint subscribers may interleave arbitrarily.
//
// DiffParallel checks exactly that: the serial sub-trace must match the
// model line for line, and each per-subscriber projection of the detached
// sub-trace must match the model's projection of its own detached firings
// onto that subscriber. Any lost, duplicated, or locally-reordered firing
// is a divergence.

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
)

// ParallelTrace is the observable outcome of a parallel replay: the serial
// (immediate + deferred) firing trace, and the detached firings projected
// per subscriber object in execution order.
type ParallelTrace struct {
	Serial   []string
	Detached [2][]string // indexed by scenario object (0 = Gen, 1 = SubGen)
}

// RunRealParallel replays the scenario through the real engine with an
// AsyncDetached pool of the given size and returns the observed traces.
// Serial entries keep the RunReal format; detached entries drop the tx
// prefix (a pool worker cannot know which driver transaction is current
// without racing it) and are recorded under a mutex in execution order.
func RunRealParallel(sc *Scenario, strategy string, workers int) (*ParallelTrace, error) {
	db, err := core.Open(core.Options{
		Strategy: strategy, Output: io.Discard,
		AsyncDetached: true, DetachedWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	gen := schema.NewClass("Gen")
	gen.Classification = schema.ReactiveClass
	sub := schema.NewClass("SubGen", gen)
	sub.Classification = schema.ReactiveClass
	if err := db.RegisterClass(gen); err != nil {
		return nil, err
	}
	if err := db.RegisterClass(sub); err != nil {
		return nil, err
	}

	var (
		out   ParallelTrace
		mu    sync.Mutex // guards out.Detached (pool workers append concurrently)
		base  uint64
		curTx int
	)
	oids := make([]oid.OID, 2)
	err = db.Atomically(func(t *core.Tx) error {
		var err error
		if oids[0], err = db.NewObject(t, "Gen", nil); err != nil {
			return err
		}
		if oids[1], err = db.NewObject(t, "SubGen", nil); err != nil {
			return err
		}
		for i, dr := range sc.Rules {
			ri, dr := i, dr
			name := fmt.Sprintf("R%d", ri)
			spec := core.RuleSpec{
				Name:       name,
				Event:      dr.Expr,
				Coupling:   couplingNames[dr.Coupling],
				Priority:   dr.Priority,
				Context:    dr.Context,
				ClassLevel: dr.ClassLevel,
				TxScoped:   dr.TxScoped,
			}
			if dr.Coupling == 2 {
				spec.Action = func(_ rule.ExecContext, det event.Detection) error {
					si := 0
					if det.Last().Source == oids[1] {
						si = 1
					}
					line := fmt.Sprintf("detached R%d %s", ri, detSuffix(det, base, oids))
					mu.Lock()
					out.Detached[si] = append(out.Detached[si], line)
					mu.Unlock()
					return nil
				}
			} else {
				spec.Action = func(_ rule.ExecContext, det event.Detection) error {
					out.Serial = append(out.Serial, fmt.Sprintf("tx%d %s R%d %s",
						curTx, couplingNames[dr.Coupling], ri, detSuffix(det, base, oids)))
					return nil
				}
			}
			if dr.CondEvery != 0 {
				every := uint64(dr.CondEvery)
				spec.Condition = func(_ rule.ExecContext, det event.Detection) (bool, error) {
					return (det.Last().Seq-base)%every != 0, nil
				}
			}
			if _, err := db.CreateRule(t, spec); err != nil {
				return err
			}
			for _, s := range dr.Subs {
				if err := db.SubscribeRule(t, name, oids[s]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	base = db.Now()
	for txIdx, tx := range sc.Txs {
		curTx = txIdx
		err := db.Atomically(func(t *core.Tx) error {
			for _, tg := range tx.Toggles {
				name := fmt.Sprintf("R%d", tg.Rule)
				if tg.Enable {
					if err := db.EnableRule(t, name); err != nil {
						return err
					}
				} else if err := db.DisableRule(t, name); err != nil {
					return err
				}
			}
			for _, r := range tx.Raises {
				if err := db.RaiseExplicit(t, oids[r.Source], r.Event); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("tx %d: %w", txIdx, err)
		}
	}
	db.WaitIdle()
	return &out, nil
}

// projectModel splits a full serial model trace into the serial sub-trace
// and the per-subscriber detached projections, matching what the parallel
// executor is required to preserve. Detached model entries look like
// "tx3 detached R1 s0 [7 9]"; the tx prefix is dropped and the line routed
// by its source tag.
func projectModel(trace []string) *ParallelTrace {
	var out ParallelTrace
	for _, line := range trace {
		rest, ok := splitTx(line)
		if !ok || !strings.HasPrefix(rest, "detached ") {
			out.Serial = append(out.Serial, line)
			continue
		}
		si := 0
		if f := strings.Fields(rest); len(f) > 2 && f[2] == "s1" {
			si = 1
		}
		out.Detached[si] = append(out.Detached[si], rest)
	}
	return &out
}

// splitTx strips a leading "tx<N> " token; ok is false if there is none.
func splitTx(line string) (rest string, ok bool) {
	if !strings.HasPrefix(line, "tx") {
		return "", false
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", false
	}
	return line[i+1:], true
}

// DiffParallel replays one seed under one strategy through the pooled
// engine (with the given worker count) and the serial reference model, and
// returns a description of the first divergence, or "" when the parallel
// execution is consistent with the model: identical serial trace, and
// identical per-subscriber detached order.
func DiffParallel(seed int64, strategy string, workers int) (string, error) {
	real, err := RunRealParallel(GenScenario(seed), strategy, workers)
	if err != nil {
		return "", fmt.Errorf("real engine, seed %d, %s, %d workers: %w", seed, strategy, workers, err)
	}
	modelTrace, err := RunModel(GenScenario(seed), strategy)
	if err != nil {
		return "", fmt.Errorf("model, seed %d, %s: %w", seed, strategy, err)
	}
	want := projectModel(modelTrace)

	if d := diffLines("serial", real.Serial, want.Serial); d != "" {
		return fmt.Sprintf("seed %d, %s, %d workers: %s", seed, strategy, workers, d), nil
	}
	for si := 0; si < 2; si++ {
		name := fmt.Sprintf("detached s%d", si)
		if d := diffLines(name, real.Detached[si], want.Detached[si]); d != "" {
			return fmt.Sprintf("seed %d, %s, %d workers: %s", seed, strategy, workers, d), nil
		}
	}
	return "", nil
}

// diffLines compares two traces and describes the first difference.
func diffLines(name string, real, model []string) string {
	n := len(real)
	if len(model) < n {
		n = len(model)
	}
	for i := 0; i < n; i++ {
		if real[i] != model[i] {
			return fmt.Sprintf("%s firing %d differs:\n  real:  %s\n  model: %s",
				name, i, real[i], model[i])
		}
	}
	if len(real) != len(model) {
		return fmt.Sprintf("%s: real fired %d times, model %d times (traces agree on common prefix)",
			name, len(real), len(model))
	}
	return ""
}
