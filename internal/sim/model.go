// Package sim contains the crash-state torture harness and the model-based
// differential tester for the rule engine.
//
// Two independent oracles live here:
//
//   - a deterministic scripted workload plus a crash-state enumerator that
//     sweeps every journal position of a fault-injecting filesystem
//     (vfs.Fault), reopens the database on each materialized crash state
//     and checks recovery invariants (crash.go, workload.go);
//
//   - a deliberately naive in-memory reference model of composite-event
//     detection and rule scheduling (this file), differential-tested
//     against the real engine on seeded pseudo-random event streams
//     (diff.go).
package sim

import (
	"fmt"
	"sort"

	"sentinel/internal/event"
)

// The reference model re-implements the ECA semantics from their
// specification (§4.3's operators, the parameter contexts, §4.4's coupling
// modes and conflict resolution) with none of the engine's machinery: no
// caches, no scratch buffers, no locks, no object system. Detections are
// plain sorted lists of occurrence sequence numbers; everything is value
// types and append. Divergence between this model and the engine on the
// same stream means one of them is wrong.

// mdet is a model detection: the constituent occurrence Seq numbers in
// ascending order (duplicates preserved — an occurrence contributing to
// both operands of a conjunction appears twice, exactly as the engine's
// Detection.merged does).
type mdet []uint64

func (d mdet) start() uint64 { return d[0] }
func (d mdet) end() uint64   { return d[len(d)-1] }

// mmerge merge-sorts two detections.
func mmerge(a, b mdet) mdet {
	out := make(mdet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mocc is a model occurrence.
type mocc struct {
	seq    uint64
	class  string // class of the source object
	method string
	when   event.Moment
	source int // model object index, for per-instance subscriptions
}

// mnode is one operator in a model detector. State is rebuilt trivially
// from the spec for each operator; compare event/detector.go for the
// engine's incremental graph.
type mnode struct {
	op     event.Op
	when   event.Moment
	class  string
	method string
	count  int
	period uint64
	ctx    event.Context
	kids   []*mnode

	left, right []mdet
	window      mdet
	haveWindow  bool
	violated    bool
	accum       []mdet
	fired       map[int]mdet
	nextTick    uint64
}

// compileModel builds a model detector for an event expression.
func compileModel(e *event.Expr, ctx event.Context) *mnode {
	n := &mnode{
		op: e.Op, when: e.When, class: e.Class, method: e.Method,
		count: e.Count, period: e.Period, ctx: ctx,
	}
	for _, c := range e.Children {
		n.kids = append(n.kids, compileModel(c, ctx))
	}
	if e.Op == event.OpAny {
		n.fired = make(map[int]mdet)
	}
	return n
}

func (n *mnode) reset() {
	n.left, n.right = nil, nil
	n.window, n.haveWindow = nil, false
	n.violated = false
	n.accum = nil
	n.nextTick = 0
	if n.fired != nil {
		n.fired = make(map[int]mdet)
	}
	for _, k := range n.kids {
		k.reset()
	}
}

// isSubclass is the model's two-class hierarchy (see diff.go): SubGen is a
// subclass of Gen.
func isSubclass(sub, super string) bool { return sub == "SubGen" && super == "Gen" }

func (n *mnode) matches(o mocc) bool {
	if n.when != o.when || n.method != o.method {
		return false
	}
	return n.class == o.class || isSubclass(o.class, n.class)
}

// feed runs one occurrence through the operator tree and returns completed
// detections, per the operator semantics of §4.3 and the parameter
// contexts of §4.5.
func (n *mnode) feed(o mocc) []mdet {
	switch n.op {
	case event.OpPrimitive:
		if n.matches(o) {
			return []mdet{{o.seq}}
		}
		return nil

	case event.OpOr:
		out := n.kids[0].feed(o)
		return append(out, n.kids[1].feed(o)...)

	case event.OpAnd:
		l, r := n.kids[0].feed(o), n.kids[1].feed(o)
		var out []mdet
		for _, dl := range l {
			out = append(out, n.pairAnd(dl, true)...)
		}
		for _, dr := range r {
			out = append(out, n.pairAnd(dr, false)...)
		}
		return out

	case event.OpSeq:
		l, r := n.kids[0].feed(o), n.kids[1].feed(o)
		var out []mdet
		// A left arriving now serves only future rights.
		for _, dr := range r {
			out = append(out, n.pairSeq(dr)...)
		}
		n.left = append(n.left, l...)
		if n.ctx == event.ContextPaper || n.ctx == event.ContextRecent {
			if len(n.left) > 1 {
				n.left = n.left[len(n.left)-1:]
			}
		}
		return out

	case event.OpNot:
		a, b, c := n.kids[0].feed(o), n.kids[1].feed(o), n.kids[2].feed(o)
		var out []mdet
		if len(b) > 0 && n.haveWindow {
			n.violated = true
		}
		for _, dc := range c {
			if n.haveWindow && !n.violated {
				out = append(out, mmerge(n.window, dc))
			}
			n.window, n.haveWindow = nil, false
			n.violated = false
		}
		if len(a) > 0 {
			n.window, n.haveWindow = a[len(a)-1], true
			n.violated = false
		}
		return out

	case event.OpAny:
		for i, k := range n.kids {
			if dets := k.feed(o); len(dets) > 0 {
				n.fired[i] = dets[len(dets)-1]
			}
		}
		if len(n.fired) >= n.count {
			var acc mdet
			first := true
			for _, d := range n.fired {
				if first {
					acc, first = d, false
				} else {
					acc = mmerge(acc, d)
				}
			}
			n.fired = make(map[int]mdet)
			return []mdet{acc}
		}
		return nil

	case event.OpAperiodic:
		a, b, c := n.kids[0].feed(o), n.kids[1].feed(o), n.kids[2].feed(o)
		var out []mdet
		if n.haveWindow {
			for _, db := range b {
				out = append(out, mmerge(n.window, db))
			}
		}
		if len(c) > 0 {
			n.window, n.haveWindow = nil, false
		}
		if len(a) > 0 {
			n.window, n.haveWindow = a[len(a)-1], true
		}
		return out

	case event.OpAperiodicStar:
		a, b, c := n.kids[0].feed(o), n.kids[1].feed(o), n.kids[2].feed(o)
		var out []mdet
		if n.haveWindow {
			n.accum = append(n.accum, b...)
			if len(c) > 0 {
				acc := n.window
				for _, db := range n.accum {
					acc = mmerge(acc, db)
				}
				out = append(out, mmerge(acc, c[0]))
				n.window, n.haveWindow = nil, false
				n.accum = nil
			}
		}
		if len(a) > 0 {
			n.window, n.haveWindow = a[len(a)-1], true
			n.accum = nil
		}
		return out

	case event.OpPeriodic:
		a, c := n.kids[0].feed(o), n.kids[1].feed(o)
		var out []mdet
		if n.haveWindow {
			for o.seq >= n.nextTick {
				out = append(out, mmerge(n.window, mdet{o.seq}))
				n.nextTick += n.period
			}
		}
		if len(c) > 0 {
			n.window, n.haveWindow = nil, false
		}
		if len(a) > 0 {
			n.window, n.haveWindow = a[len(a)-1], true
			n.nextTick = n.window.end() + n.period
		}
		return out
	}
	return nil
}

func (n *mnode) pairAnd(d mdet, fromLeft bool) []mdet {
	mine, other := &n.left, &n.right
	if !fromLeft {
		mine, other = &n.right, &n.left
	}
	var out []mdet
	switch n.ctx {
	case event.ContextPaper:
		*mine = []mdet{d}
		if len(*other) > 0 {
			out = append(out, mmerge(d, (*other)[0]))
			n.left, n.right = nil, nil
		}
	case event.ContextRecent:
		*mine = []mdet{d}
		if len(*other) > 0 {
			out = append(out, mmerge(d, (*other)[len(*other)-1]))
		}
	case event.ContextChronicle:
		*mine = append(*mine, d)
		for len(n.left) > 0 && len(n.right) > 0 {
			out = append(out, mmerge(n.left[0], n.right[0]))
			n.left, n.right = n.left[1:], n.right[1:]
		}
	case event.ContextContinuous:
		if len(*other) > 0 {
			for _, od := range *other {
				out = append(out, mmerge(d, od))
			}
			*other = nil
		} else {
			*mine = append(*mine, d)
		}
	case event.ContextCumulative:
		*mine = append(*mine, d)
		if len(n.left) > 0 && len(n.right) > 0 {
			acc := n.left[0]
			for _, x := range n.left[1:] {
				acc = mmerge(acc, x)
			}
			for _, x := range n.right {
				acc = mmerge(acc, x)
			}
			n.left, n.right = nil, nil
			out = append(out, acc)
		}
	}
	return out
}

func (n *mnode) pairSeq(dr mdet) []mdet {
	eligible := func(dl mdet) bool { return dl.end() < dr.start() }
	var out []mdet
	switch n.ctx {
	case event.ContextPaper:
		if len(n.left) > 0 && eligible(n.left[len(n.left)-1]) {
			out = append(out, mmerge(n.left[len(n.left)-1], dr))
			n.left = nil
		}
	case event.ContextRecent:
		if len(n.left) > 0 && eligible(n.left[len(n.left)-1]) {
			out = append(out, mmerge(n.left[len(n.left)-1], dr))
		}
	case event.ContextChronicle:
		if len(n.left) > 0 && eligible(n.left[0]) {
			out = append(out, mmerge(n.left[0], dr))
			n.left = n.left[1:]
		}
	case event.ContextContinuous:
		var keep []mdet
		for _, dl := range n.left {
			if eligible(dl) {
				out = append(out, mmerge(dl, dr))
			} else {
				keep = append(keep, dl)
			}
		}
		n.left = keep
	case event.ContextCumulative:
		var keep, use []mdet
		for _, dl := range n.left {
			if eligible(dl) {
				use = append(use, dl)
			} else {
				keep = append(keep, dl)
			}
		}
		if len(use) > 0 {
			acc := use[0]
			for _, x := range use[1:] {
				acc = mmerge(acc, x)
			}
			out = append(out, mmerge(acc, dr))
			n.left = keep
		}
	}
	return out
}

// ---- scheduling model ----

// mrule is the model's view of one rule.
type mrule struct {
	idx        int // creation order; names the rule ("R<idx>")
	coupling   int // 0 immediate, 1 deferred, 2 detached
	priority   int
	txScoped   bool
	classLevel string // "" = instance-level
	subs       []int  // model object indexes this rule is subscribed to
	condEvery  int    // fire iff end%condEvery != 0; 0 = unconditional
	enabled    bool
	det        *mnode
}

func (r *mrule) name() string { return fmt.Sprintf("R%d", r.idx) }

func (r *mrule) condPasses(d mdet) bool {
	return r.condEvery == 0 || d.end()%uint64(r.condEvery) != 0
}

// mfiring is a scheduled (rule, detection) pair awaiting conflict
// resolution. src is the model object whose raise completed the detection —
// the engine's subscriber OID — and tags every trace line so the parallel
// differ can project per-object subsequences.
type mfiring struct {
	rule *mrule
	det  mdet
	src  int
	seq  uint64 // arrival order on its agenda
}

// orderFirings sorts by the named conflict-resolution strategy, stably.
func orderFirings(fs []mfiring, strategy string) {
	switch strategy {
	case "fifo":
		sort.SliceStable(fs, func(i, j int) bool { return fs[i].seq < fs[j].seq })
	case "lifo":
		sort.SliceStable(fs, func(i, j int) bool { return fs[i].seq > fs[j].seq })
	default: // priority
		sort.SliceStable(fs, func(i, j int) bool {
			if fs[i].rule.priority != fs[j].rule.priority {
				return fs[i].rule.priority > fs[j].rule.priority
			}
			return fs[i].seq < fs[j].seq
		})
	}
}

// model is the whole reference engine: rules, consumer resolution, the
// logical clock, and the per-transaction agendas.
type model struct {
	rules    []*mrule
	strategy string
	clock    uint64
	trace    []string
}

// consumersOf mirrors core's delivery order: instance subscriptions in
// subscription order first, then class-level rules over the MRO (the
// source class's own rules, then its superclass's), deduplicated.
func (m *model) consumersOf(o mocc) []*mrule {
	var out []*mrule
	seen := make(map[int]bool)
	for _, r := range m.rules {
		for _, s := range r.subs {
			if s == o.source && !seen[r.idx] {
				seen[r.idx] = true
				out = append(out, r)
			}
		}
	}
	// Class-level rules: subclass first (MRO order), registration order
	// within a class.
	mro := []string{"Gen"}
	if o.class == "SubGen" {
		mro = []string{"SubGen", "Gen"}
	}
	for _, cls := range mro {
		for _, r := range m.rules {
			if r.classLevel == cls && !seen[r.idx] {
				seen[r.idx] = true
				out = append(out, r)
			}
		}
	}
	return out
}

func (m *model) emit(txIdx int, phase string, r *mrule, src int, d mdet) {
	m.trace = append(m.trace, fmt.Sprintf("tx%d %s %s s%d %v", txIdx, phase, r.name(), src, []uint64(d)))
}

// runTx processes one transaction's raises and its commit: immediate
// firings inline per raise, deferred drained at commit, detached after
// commit in fresh agenda order, TxScoped detectors reset at the end.
func (m *model) runTx(txIdx int, raises []mocc) {
	var deferred, detached []mfiring
	var defSeq uint64
	touched := make(map[*mrule]bool)

	for _, o := range raises {
		m.clock++
		o.seq = m.clock
		var immediate []mfiring
		var immSeq uint64
		for _, r := range m.consumersOf(o) {
			if r.txScoped {
				touched[r] = true
			}
			if !r.enabled {
				continue
			}
			for _, det := range r.det.feed(o) {
				switch r.coupling {
				case 0:
					immSeq++
					immediate = append(immediate, mfiring{rule: r, det: det, src: o.source, seq: immSeq})
				case 1:
					defSeq++
					deferred = append(deferred, mfiring{rule: r, det: det, src: o.source, seq: defSeq})
				case 2:
					detached = append(detached, mfiring{rule: r, det: det, src: o.source})
				}
			}
		}
		orderFirings(immediate, m.strategy)
		for _, f := range immediate {
			if f.rule.condPasses(f.det) {
				m.emit(txIdx, "immediate", f.rule, f.src, f.det)
			}
		}
	}

	// Commit: drain deferred in strategy order (actions raise no events in
	// the harness, so one drain reaches quiescence).
	orderFirings(deferred, m.strategy)
	for _, f := range deferred {
		if f.rule.condPasses(f.det) {
			m.emit(txIdx, "deferred", f.rule, f.src, f.det)
		}
	}

	// Transaction-scoped detection state dies with the transaction.
	for r := range touched {
		r.det.reset()
	}

	// Detached: fresh agenda seeded in arrival order, then each firing in
	// its own transaction.
	for i := range detached {
		detached[i].seq = uint64(i + 1)
	}
	orderFirings(detached, m.strategy)
	for _, f := range detached {
		if f.rule.condPasses(f.det) {
			m.emit(txIdx, "detached", f.rule, f.src, f.det)
		}
	}
}

// disable mirrors rule.Disable: clears the detector state too.
func (r *mrule) disable() {
	r.enabled = false
	r.det.reset()
}
