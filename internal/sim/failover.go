package sim

// Failover harness: a cluster-in-process — one primary on the fault VFS,
// N followers behind fault-injecting pipes — driven through primary loss
// and follower promotion, with the invariants checked against reference
// replays and cross-node trace comparison:
//
//	(a) durability: every quorum-acked commit survives the promotion (the
//	    promoted follower's applied LSN covers the highest acked LSN, and
//	    the promoted history byte-matches a reference replay of exactly
//	    the surviving transactions);
//	(b) convergence: once the dust settles, every surviving node's
//	    committed heap is byte-identical to the new primary's;
//	(c) traces: per-subscriber push traces never diverge beyond the
//	    documented windows — a node that was base-synced past a gap
//	    misses that gap's deliveries (its trace is a prefix+suffix of the
//	    promoted node's), and the deposed primary's trace agrees with the
//	    promoted node's on their shared history;
//	(d) fencing: once the new epoch exists, the deposed primary can never
//	    get another write acknowledged (ErrFenced), and a deposed primary
//	    rejoining with unacked commits past the seal is re-seeded, never
//	    resumed.
//
// The pipes replace TCP but keep its failure modes: Send blocks (follower
// pacing), a cut pipe fails sends exactly like a dead connection, and the
// delay fault stalls the apply side. The primary's storage runs on the
// fault VFS so the kill fault can crash-enumerate it mid-history in every
// crash mode — the crashed image later rejoins as a follower and must be
// handled by the epoch rules.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/repl"
	"sentinel/internal/vfs"
	"sentinel/internal/wire"
)

// FailoverFault enumerates how the primary is lost.
type FailoverFault int

const (
	// FaultKill crashes the primary's filesystem at a random operation
	// count (in the scenario's crash mode) and kills the process.
	FaultKill FailoverFault = iota
	// FaultPartition cuts every follower pipe; the primary lives on,
	// degrading to async, and must be fenceable after the promotion.
	FaultPartition
	// FaultDelay injects per-frame apply delays for the whole run, then
	// kills the primary as FaultKill does.
	FaultDelay
)

// FailoverFaults lists every fault kind, for sweeps.
var FailoverFaults = []FailoverFault{FaultKill, FaultPartition, FaultDelay}

func (f FailoverFault) String() string {
	switch f {
	case FaultKill:
		return "kill"
	case FaultPartition:
		return "partition"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// failoverQuorumTimeout bounds each quorum wait in the harness: long
// enough that a healthy follower always acks in time, short enough that
// the partition scenario's degraded commits don't dominate the sweep.
const failoverQuorumTimeout = 150 * time.Millisecond

// failoverConverge bounds how long the harness waits for followers to
// drain after the final transaction.
const failoverConverge = 10 * time.Second

// pipeFrame is one replication push in flight on a pipe.
type pipeFrame struct {
	op      byte
	payload []byte
}

// pipeSession implements repl.FollowerSession over a channel: the
// in-process stand-in for a follower's TCP session. cut makes every send
// fail exactly like a dead connection (the shipper then drops the
// follower, as it would on a broken socket).
type pipeSession struct {
	id     uint64
	frames chan pipeFrame
	closed chan struct{}
	once   sync.Once
	cut    atomic.Bool
}

func newPipeSession(id uint64) *pipeSession {
	return &pipeSession{id: id, frames: make(chan pipeFrame, 256), closed: make(chan struct{})}
}

func (s *pipeSession) SessionID() uint64 { return s.id }

func (s *pipeSession) Send(op byte, payload []byte, cancel <-chan struct{}) bool {
	if s.cut.Load() {
		return false
	}
	select {
	case s.frames <- pipeFrame{op: op, payload: payload}:
		return true
	case <-s.closed:
		return false
	case <-cancel:
		return false
	}
}

func (s *pipeSession) TrySend(op byte, payload []byte) bool {
	if s.cut.Load() {
		return false
	}
	select {
	case s.frames <- pipeFrame{op: op, payload: payload}:
		return true
	case <-s.closed:
		return false
	default:
		return false
	}
}

func (s *pipeSession) close() { s.once.Do(func() { close(s.closed) }) }

// failNode is one follower of the in-process cluster: a replica database
// on its own memory filesystem, an apply goroutine draining its pipe, and
// a push-trace sink.
type failNode struct {
	name string
	dir  string
	fs   *vfs.Mem
	db   *core.Database
	sink *traceSink

	sess     *pipeSession
	wg       sync.WaitGroup
	delayMax time.Duration
	rngSeed  int64
}

// attach handshakes the node into p from its current (LSN, epoch) and
// starts the apply goroutine, mirroring internal/repl's follower stream:
// epoch adoption on resume, epoch-before-install on base sync, an ack
// after every applied batch. Returns whether the primary demanded a base
// sync.
func (n *failNode) attach(p *repl.Primary, sessID uint64) (needBase bool, err error) {
	sess := newPipeSession(sessID)
	primaryEpoch, _, needBase, err := p.AddFollower(sess, n.db.ReplLSN(), n.db.ReplEpoch())
	if err != nil {
		return false, err
	}
	if !needBase && n.db.ReplEpoch() != primaryEpoch {
		n.db.SetReplEpoch(primaryEpoch)
		_ = n.db.Checkpoint()
	}
	n.sess = sess
	n.wg.Add(1)
	go n.applyLoop(p, sess, primaryEpoch, needBase)
	p.StartShipper(sessID)
	return needBase, nil
}

// applyLoop drains the pipe: base chunks accumulate until the snap-end
// installs them (epoch first, so the new position persists atomically
// with the installed state), data batches apply in order, and each
// advance acks back to the primary — the quorum-commit signal.
func (n *failNode) applyLoop(p *repl.Primary, sess *pipeSession, primaryEpoch uint64, syncing bool) {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(n.rngSeed))
	var base []core.ReplBaseObject
	for {
		select {
		case <-sess.closed:
			return
		case m := <-sess.frames:
			if n.delayMax > 0 {
				time.Sleep(time.Duration(rng.Int63n(int64(n.delayMax))))
			}
			switch m.op {
			case wire.OpReplSnap:
				objs, err := wire.DecodeReplSnap(m.payload)
				if err != nil {
					return
				}
				for _, o := range objs {
					base = append(base, core.ReplBaseObject{ID: o.ID, Img: o.Img})
				}
			case wire.OpReplSnapEnd:
				baseLSN, _, err := wire.DecodeReplSnapEnd(m.payload)
				if err != nil {
					return
				}
				n.db.SetReplEpoch(primaryEpoch)
				if err := n.db.ApplyBaseState(baseLSN, base); err != nil {
					n.db.SetReplEpoch(0)
					return
				}
				base = nil
				syncing = false
				p.Ack(sess.id, n.db.ReplLSN(), n.db.ReplEpoch())
			case wire.OpReplFrames:
				wb, err := wire.DecodeReplBatch(m.payload)
				if err != nil {
					return
				}
				if syncing && wb.LSN != 0 {
					continue // covered by the in-flight base state
				}
				b := repl.BatchFromWire(wb)
				if err := n.db.ApplyReplicated(b); err != nil {
					return
				}
				if b.LSN != 0 {
					p.Ack(sess.id, n.db.ReplLSN(), n.db.ReplEpoch())
				}
			}
		}
	}
}

// detach tears the node's stream down: deregister from the primary (stops
// the shipper), close the pipe, wait the apply goroutine out. After
// detach the node's applied LSN is final.
func (n *failNode) detach(p *repl.Primary) {
	if n.sess == nil {
		return
	}
	p.RemoveFollower(n.sess.id)
	n.sess.close()
	n.wg.Wait()
	n.sess = nil
}

// promote turns the node into a primary, the harness twin of
// repl.Follower.Promote: close (the final checkpoint persists the exact
// (epoch, LSN) position), reopen writable with quorum commit on, start a
// Primary (which bumps the epoch past the old one and records the seal).
func (n *failNode) promote() (*repl.Primary, error) {
	if err := n.db.Close(); err != nil {
		return nil, fmt.Errorf("promote close: %w", err)
	}
	db, err := core.Open(core.Options{
		Dir: n.dir, VFS: n.fs, SyncOnCommit: true, Output: io.Discard,
		SyncReplicas: 1, QuorumTimeout: failoverQuorumTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("promote reopen: %w", err)
	}
	n.db = db
	return repl.NewPrimary(db, repl.PrimaryOptions{}), nil
}

// FailoverResult summarizes one failover scenario.
type FailoverResult struct {
	Seed  int64
	Fault FailoverFault
	Mode  vfs.CrashMode

	Steps       int    // transactions committed across both epochs
	FaultAt     int    // step index at which the primary was lost
	PromotedLSN uint64 // promoted follower's applied LSN at takeover
	MaxAckedLSN uint64 // highest quorum-acked LSN under the old epoch
	Degraded    uint64 // commits that timed out and degraded to async
	Violations  []string
}

// FailoverScenario runs one seeded failover: primary + 2 followers under
// quorum commit (K=1), fault injection at a seed-random step, promotion
// of the most-advanced survivor, re-handshake of the rest, a post-fault
// workload on the new primary, and the full invariant check.
func FailoverScenario(seed int64, fault FailoverFault, mode vfs.CrashMode) (*FailoverResult, error) {
	res := &FailoverResult{Seed: seed, Fault: fault, Mode: mode}
	rng := rand.New(rand.NewSource(seed ^ 0xfa110))
	steps := genReplSteps(seed, 14+int(seed%7))
	specs := genSubSpecs(rng)
	post := genFailoverPostSteps(rng, 4+rng.Intn(5))
	res.FaultAt = 2 + rng.Intn(len(steps)-2) // after the schema, before the end

	var delayMax time.Duration
	if fault == FaultDelay {
		delayMax = 3 * time.Millisecond
	}

	// Old primary on the fault VFS (crash-enumerable), quorum commit K=1.
	faultFS := vfs.NewFault()
	pri, err := core.Open(core.Options{
		Dir: "p", VFS: faultFS, SyncOnCommit: true, Output: io.Discard,
		SyncReplicas: 1, QuorumTimeout: failoverQuorumTimeout,
	})
	if err != nil {
		return nil, err
	}
	p := repl.NewPrimary(pri, repl.PrimaryOptions{})
	oldEpoch := p.Epoch()

	// Two followers, attached before the first commit so the quorum has
	// someone to ask from LSN 1 on.
	nodes := make([]*failNode, 2)
	for i := range nodes {
		fs := vfs.NewMem()
		db, err := openSimReplica(fs)
		if err != nil {
			return nil, err
		}
		nodes[i] = &failNode{
			name: fmt.Sprintf("follower%d", i), dir: "r", fs: fs, db: db,
			sink: newTraceSink(), delayMax: delayMax, rngSeed: seed + int64(i)*7919,
		}
		if _, err := nodes[i].attach(p, uint64(i+1)); err != nil {
			return nil, fmt.Errorf("attach %s: %w", nodes[i].name, err)
		}
	}
	priSink := newTraceSink()

	// Schema first, then subscribers everywhere, so every sink observes
	// exactly the post-setup stream.
	degraded := func() uint64 { return pri.Stats().Replication.QuorumDegraded }
	ackedOld := uint64(0)
	runOld := func(s replStep) error {
		before := degraded()
		if err := runReplStep(pri, s); err != nil {
			return err
		}
		res.Steps++
		if degraded() == before {
			if lsn := pri.ReplLSN(); lsn > ackedOld {
				ackedOld = lsn
			}
		}
		return nil
	}
	if err := runOld(steps[0]); err != nil {
		return nil, fmt.Errorf("seed %d schema: %w", seed, err)
	}
	for _, n := range nodes {
		if !awaitLSN(n.db, 1, failoverConverge) {
			return nil, fmt.Errorf("%s never applied the schema", n.name)
		}
		if err := subscribeSpecs(n.db, n.sink, specs); err != nil {
			return nil, err
		}
	}
	if err := subscribeSpecs(pri, priSink, specs); err != nil {
		return nil, err
	}

	// Old-epoch workload up to the fault point.
	for i, s := range steps[1:res.FaultAt] {
		if err := runOld(s); err != nil {
			return nil, fmt.Errorf("seed %d step %d: %w", seed, i+1, err)
		}
	}

	// Inject the fault.
	var priCrash map[string][]byte
	switch fault {
	case FaultPartition:
		for _, n := range nodes {
			n.sess.cut.Store(true)
		}
		// The partitioned primary keeps committing: these degrade (timeout,
		// counted, locally durable) and die with the old epoch — the
		// documented lost-unacked window, so they are deliberately NOT in
		// the reference replay below.
		before := degraded()
		if err := pri.Exec("O0!SetVal(777777)"); err != nil {
			return nil, fmt.Errorf("partitioned commit: %w", err)
		}
		if degraded() != before+1 {
			res.Violations = append(res.Violations,
				"partitioned commit did not degrade: it cannot have been acked by a cut follower")
		}
	case FaultKill, FaultDelay:
		// Crash the primary's filesystem at a random journal point in the
		// scenario's crash mode; the image rejoins as a follower later.
		priCrash = faultFS.CrashState(rng.Intn(faultFS.Ops()+1), mode)
	}

	// The primary is gone (or unreachable): seal every pipe and pick the
	// most-advanced survivor.
	for _, n := range nodes {
		n.detach(p)
	}
	p.Close()
	if fault != FaultPartition {
		pri.CloseAbrupt()
	}

	tgt, other := nodes[0], nodes[1]
	if other.db.ReplLSN() > tgt.db.ReplLSN() {
		tgt, other = other, tgt
	}
	res.PromotedLSN = tgt.db.ReplLSN()
	res.MaxAckedLSN = ackedOld

	// Invariant (a), first half: the promoted follower covers every
	// quorum-acked commit. K=1 acks mean "some follower applied it", and
	// promotion picks the max — so a hole here is a real durability bug.
	if ackedOld > res.PromotedLSN {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"durability: max quorum-acked LSN %d exceeds promoted follower's applied LSN %d", ackedOld, res.PromotedLSN))
	}

	promotedAtTakeover := tgt.sink.snapshotDeduped()
	p2, err := tgt.promote()
	if err != nil {
		return nil, err
	}
	db2 := tgt.db
	if p2.Epoch() <= oldEpoch {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"promotion did not advance the epoch: %d -> %d", oldEpoch, p2.Epoch()))
	}
	if err := subscribeSpecs(db2, tgt.sink, specs); err != nil {
		return nil, err
	}

	// Surviving follower re-handshakes into the new primary. At the seal
	// it resumes; behind it, the empty ring forces a base re-seed — both
	// legal, both converge.
	tgt.sess = nil
	if _, err := other.attach(p2, 10); err != nil {
		return nil, fmt.Errorf("re-attach %s: %w", other.name, err)
	}

	// Invariant (d): the deposed primary can never get another write acked.
	if fault == FaultPartition {
		if !p.FenceIfNewer(p2.Epoch()) {
			res.Violations = append(res.Violations, "FenceIfNewer(newer epoch) did not fence the deposed primary")
		}
		preLSN := pri.ReplLSN()
		err := pri.Exec("O0!SetVal(888888)")
		if !errors.Is(err, core.ErrFenced) {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"fenced primary accepted a write (err=%v)", err))
		}
		if pri.ReplLSN() != preLSN {
			res.Violations = append(res.Violations, "fenced primary advanced its LSN")
		}
		pri.Close()
	}

	// New-epoch workload.
	for i, s := range post {
		before := db2.Stats().Replication.QuorumDegraded
		if err := runReplStep(db2, s); err != nil {
			return nil, fmt.Errorf("seed %d post step %d: %w", seed, i, err)
		}
		res.Steps++
		_ = before
	}

	// The deposed primary's crash image rejoins as a follower (kill and
	// delay faults). With unacked commits past the seal it MUST be told to
	// re-seed — resuming would graft a divergent suffix into the new epoch.
	var demoted *failNode
	if priCrash != nil {
		fs := vfs.NewMem()
		fs.Install(priCrash)
		db, err := core.Open(core.Options{Dir: "p", VFS: fs, Replica: true, SyncOnCommit: true, Output: io.Discard})
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"deposed primary's crash image (%v) failed to reopen as a replica: %v", mode, err))
		} else {
			demoted = &failNode{name: "demoted", dir: "p", fs: fs, db: db, sink: newTraceSink()}
			rejoinLSN := db.ReplLSN()
			needBase, err := demoted.attach(p2, 11)
			if err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf("deposed primary rejoin: %v", err))
				demoted.db.CloseAbrupt()
				demoted = nil
			} else if rejoinLSN > res.PromotedLSN && !needBase {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"deposed primary resumed at LSN %d past the seal %d without a base re-seed", rejoinLSN, res.PromotedLSN))
			}
		}
	}

	// Convergence: every surviving node drains to the new primary's LSN,
	// then heaps must be byte-identical (invariant b).
	finalLSN := db2.ReplLSN()
	check := []*failNode{other}
	if demoted != nil {
		check = append(check, demoted)
	}
	for _, n := range check {
		if !awaitLSN(n.db, finalLSN, failoverConverge) {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"%s stuck at LSN %d, new primary at %d", n.name, n.db.ReplLSN(), finalLSN))
		}
	}
	for _, n := range check {
		n.detach(p2)
	}
	want, err := captureReplState(db2)
	if err != nil {
		return nil, err
	}
	for _, n := range check {
		got, err := captureReplState(n.db)
		if err != nil {
			return nil, err
		}
		if d := diffReplStates("promoted vs "+n.name, want, got); d != "" {
			res.Violations = append(res.Violations, d)
		}
	}

	// Invariant (a), second half — the reference replay: a fresh database
	// executing exactly the surviving transactions (the applied old-epoch
	// prefix, then the post-fault workload) must reproduce the promoted
	// history byte for byte. Lost-unacked old-epoch commits are excluded:
	// that is the semantics being asserted.
	refSteps := append(append([]replStep{}, steps[:res.PromotedLSN]...), post...)
	if d, err := failoverReference(refSteps, want); err != nil {
		return nil, err
	} else if d != "" {
		res.Violations = append(res.Violations, "reference replay: "+d)
	}

	// Invariant (c): per-subscriber traces. The survivor's deduped trace
	// must be a prefix+suffix of the promoted node's (the gap, if any, is
	// exactly the window a base re-seed documents away); the deposed
	// primary's trace must agree with the promoted node's on the history
	// they shared.
	promoted := tgt.sink.snapshotDeduped()
	survivor := other.sink.snapshotDeduped()
	priTrace := priSink.snapshotDeduped()
	for i := range specs {
		label := fmt.Sprintf("sub%d", i)
		if !prefixPlusSuffix(survivor[label], promoted[label]) {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"%s: survivor trace (%d lines) is not a prefix+suffix of the promoted trace (%d lines)",
				label, len(survivor[label]), len(promoted[label])))
		}
		shared := promotedAtTakeover[label]
		if len(priTrace[label]) < len(shared) {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"%s: old primary delivered %d pushes, promoted follower applied %d on the shared history",
				label, len(priTrace[label]), len(shared)))
		} else {
			for k, line := range shared {
				if priTrace[label][k] != line {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"%s: shared-history push %d diverged:\n  old primary: %s\n  promoted:    %s",
						label, k, priTrace[label][k], line))
					break
				}
			}
		}
	}

	p2.Close()
	db2.Close()
	other.db.Close()
	if demoted != nil {
		demoted.db.Close()
	}
	return res, nil
}

// genFailoverPostSteps generates the new-epoch workload: sends on the
// fixed objects plus binds/deletes of fresh names (P*, disjoint from
// genReplSteps' N* extras, so a lost old-epoch bind can never leave a
// post-fault step dangling).
func genFailoverPostSteps(rng *rand.Rand, n int) []replStep {
	var steps []replStep
	var extras []string
	next := 0
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 7:
			steps = append(steps, replStep{script: fmt.Sprintf("O%d!SetVal(%d)", rng.Intn(3), 100000+i)})
		case r < 9:
			name := fmt.Sprintf("P%d", next)
			next++
			steps = append(steps, replStep{script: fmt.Sprintf("bind %s new Item(val: %d)", name, i)})
			extras = append(extras, name)
		default:
			if len(extras) == 0 {
				steps = append(steps, replStep{script: "O1!SetVal(424242)"})
				break
			}
			name := extras[len(extras)-1]
			extras = extras[:len(extras)-1]
			steps = append(steps, replStep{deleteName: name})
		}
	}
	return steps
}

// failoverReference replays steps on a fresh database and diffs its
// committed heap against want. The nop ship hook turns LSN accounting on
// so the reference numbers its history like the cluster did.
func failoverReference(steps []replStep, want *replState) (string, error) {
	ref, err := core.Open(core.Options{Dir: "ref", VFS: vfs.NewMem(), Output: io.Discard})
	if err != nil {
		return "", err
	}
	defer ref.Close()
	ref.SetReplShip(func(core.ReplBatch) {})
	for i, s := range steps {
		if err := runReplStep(ref, s); err != nil {
			return "", fmt.Errorf("reference step %d: %w", i, err)
		}
	}
	got, err := captureReplState(ref)
	if err != nil {
		return "", err
	}
	return diffReplStates("reference vs promoted", got, want), nil
}

// awaitLSN polls db's applied LSN until it reaches want.
func awaitLSN(db *core.Database, want uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if db.ReplLSN() >= want {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// snapshotDeduped copies the sink's per-label traces with at-least-once
// duplicates removed. A duplicate is a byte-identical line: occurrence
// sequence numbers make every distinct delivery distinct (fanoutReplicated
// advances the replica clock precisely so promotions cannot reuse them),
// so line identity IS Seq identity.
func (s *traceSink) snapshotDeduped() map[string][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]string, len(s.lines))
	for label, lines := range s.lines {
		seen := make(map[string]bool, len(lines))
		keep := make([]string, 0, len(lines))
		for _, l := range lines {
			if !seen[l] {
				seen[l] = true
				keep = append(keep, l)
			}
		}
		out[label] = keep
	}
	return out
}

// prefixPlusSuffix reports whether sub is exactly a prefix of full
// followed by a suffix of full — i.e. full with one contiguous gap cut
// out (possibly empty: equality counts). This is the only divergence a
// base re-seed may introduce into a follower's delivery trace.
func prefixPlusSuffix(sub, full []string) bool {
	if len(sub) > len(full) {
		return false
	}
	a := 0
	for a < len(sub) && sub[a] == full[a] {
		a++
	}
	b := 0
	for b < len(sub)-a && sub[len(sub)-1-b] == full[len(full)-1-b] {
		b++
	}
	return a+b >= len(sub)
}

// FailoverSweepResult aggregates a failover sweep.
type FailoverSweepResult struct {
	Scenarios  int
	Steps      int
	Violations []string
}

// FailoverSweep enumerates seeds × fault kinds × crash modes (the
// partition fault has no crash state, so it runs once per seed) and runs
// every stride-th cell. stride 1 is the full matrix (the torture target);
// tests stride it down to stay inside the normal budget.
func FailoverSweep(seeds, stride int) (*FailoverSweepResult, error) {
	if stride < 1 {
		stride = 1
	}
	res := &FailoverSweepResult{}
	cell := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, fault := range FailoverFaults {
			modes := vfs.Modes
			if fault == FaultPartition {
				modes = vfs.Modes[:1]
			}
			for _, mode := range modes {
				if cell++; (cell-1)%stride != 0 {
					continue
				}
				r, err := FailoverScenario(seed, fault, mode)
				if err != nil {
					return nil, fmt.Errorf("seed %d %v/%v: %w", seed, fault, mode, err)
				}
				res.Scenarios++
				res.Steps += r.Steps
				for _, v := range r.Violations {
					res.Violations = append(res.Violations,
						fmt.Sprintf("seed %d %v/%v: %s", seed, fault, mode, v))
				}
			}
		}
	}
	return res, nil
}
