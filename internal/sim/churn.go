package sim

// Differential testing of selective consumer-cache invalidation under
// catalog churn: a seeded scenario interleaves rule creation/deletion,
// enable/disable flips, subscribe/unsubscribe, object deletion and class
// evolution with a sustained raise stream, and is replayed twice through
// the real engine — once with selective (blast-radius) invalidation, once
// with the GlobalConsumerInvalidation reference mode that stales the whole
// cache on every mutation. Any divergence between the two firing traces is
// a cache-coherence bug: an entry that survived a mutation it depended on,
// or an invalidation that failed to reach the raise path.

import (
	"fmt"
	"io"
	"math/rand"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// Churn op kinds. A scenario is a flat list of transactions, each a list
// of ops applied in order.
const (
	churnRaise = iota
	churnCreateRule
	churnDeleteRule
	churnToggle
	churnSubscribe
	churnUnsubscribe
	churnEvolve
)

// ChurnOp is one scripted operation. Rule names are "C<Rule>" where Rule
// is a monotone counter assigned at generation time, so delete/toggle/
// subscribe ops reference rules unambiguously across both replays.
type ChurnOp struct {
	Kind       int
	Source     int // raise/subscribe/unsubscribe: object index
	Event      string
	Rule       int
	Enable     bool
	ClassLevel string
	Subs       []int // create: object indexes subscribed at creation
	Coupling   int
	Priority   int
	CondEvery  int
	Expr       *event.Expr
}

// ChurnScenario is a deterministic churn-heavy script.
type ChurnScenario struct {
	Seed int64
	Txs  [][]ChurnOp
}

// GenChurnScenario expands a seed into a churn scenario. The generator
// tracks rule liveness and subscriptions so every op is valid (deletes name
// live rules, unsubscribes existing subscriptions), keeping replay errors
// impossible by construction; raises outnumber churn ops roughly 3:1 so
// every mutation's blast radius is probed by traffic before the next one.
func GenChurnScenario(seed int64) *ChurnScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := &ChurnScenario{Seed: seed}

	nextRule := 0
	var live []int            // live rule ids
	subs := map[[2]int]bool{} // {rule, object} → subscribed
	enabled := map[int]bool{} // live rule id → enabled

	pick := func(xs []int) int { return xs[rng.Intn(len(xs))] }

	nTxs := 12 + rng.Intn(8)
	for t := 0; t < nTxs; t++ {
		var ops []ChurnOp
		nOps := 4 + rng.Intn(8)
		for i := 0; i < nOps; i++ {
			roll := rng.Intn(12)
			switch {
			case roll == 6: // create rule
				op := ChurnOp{
					Kind:     churnCreateRule,
					Rule:     nextRule,
					Coupling: rng.Intn(3),
					Priority: rng.Intn(7) - 3,
				}
				if rng.Intn(3) == 0 {
					if rng.Intn(2) == 0 {
						op.ClassLevel = "Gen"
					} else {
						op.ClassLevel = "SubGen"
					}
				} else {
					// Instance-level rules start with subscriptions so they
					// participate immediately (later subscribe/unsubscribe
					// ops still churn them).
					switch rng.Intn(3) {
					case 0:
						op.Subs = []int{0}
					case 1:
						op.Subs = []int{1}
					default:
						op.Subs = []int{0, 1}
					}
					for _, o := range op.Subs {
						subs[[2]int{nextRule, o}] = true
					}
				}
				if rng.Intn(3) == 1 {
					op.CondEvery = 2 + rng.Intn(2)
				}
				for {
					op.Expr = randExpr(rng, 1)
					if op.Expr.Validate() == nil {
						break
					}
				}
				ops = append(ops, op)
				live = append(live, nextRule)
				enabled[nextRule] = true
				nextRule++
			case roll == 7 && len(live) > 0: // delete rule
				r := pick(live)
				ops = append(ops, ChurnOp{Kind: churnDeleteRule, Rule: r})
				for i, x := range live {
					if x == r {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
				delete(enabled, r)
				delete(subs, [2]int{r, 0})
				delete(subs, [2]int{r, 1})
			case roll == 8 && len(live) > 0: // toggle
				r := pick(live)
				en := !enabled[r]
				if rng.Intn(3) == 0 { // sometimes a no-op re-flip
					en = enabled[r]
				}
				ops = append(ops, ChurnOp{Kind: churnToggle, Rule: r, Enable: en})
				enabled[r] = en
			case roll == 9 && len(live) > 0: // subscribe
				r, o := pick(live), rng.Intn(2)
				ops = append(ops, ChurnOp{Kind: churnSubscribe, Rule: r, Source: o})
				subs[[2]int{r, o}] = true
			case roll == 10 && len(subs) > 0: // unsubscribe
				// Deterministic pick: lowest (rule, object) pair.
				best := [2]int{1 << 30, 0}
				for k := range subs {
					if k[0] < best[0] || (k[0] == best[0] && k[1] < best[1]) {
						best = k
					}
				}
				ops = append(ops, ChurnOp{Kind: churnUnsubscribe, Rule: best[0], Source: best[1]})
				delete(subs, best)
			case roll == 11: // evolve SubGen (the only leaf class; Gen has a subclass)
				ops = append(ops, ChurnOp{Kind: churnEvolve, Rule: t*16 + i})
			default: // raise (also the fallback when a churn op has no valid target)
				ops = append(ops, ChurnOp{
					Kind:   churnRaise,
					Source: rng.Intn(2),
					Event:  eventNames[rng.Intn(len(eventNames))],
				})
			}
		}
		sc.Txs = append(sc.Txs, ops)
	}
	return sc
}

// RunChurn replays a churn scenario through the real engine and returns
// the firing trace. global selects the whole-cache reference invalidation
// mode; both modes must produce byte-identical traces.
func RunChurn(sc *ChurnScenario, strategy string, global bool) ([]string, error) {
	db, err := core.Open(core.Options{
		Strategy:                   strategy,
		Output:                     io.Discard,
		GlobalConsumerInvalidation: global,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	gen := schema.NewClass("Gen")
	gen.Classification = schema.ReactiveClass
	sub := schema.NewClass("SubGen", gen)
	sub.Classification = schema.ReactiveClass
	if err := db.RegisterClass(gen); err != nil {
		return nil, err
	}
	if err := db.RegisterClass(sub); err != nil {
		return nil, err
	}

	var (
		trace []string
		base  uint64
		curTx int
	)
	oids := make([]oid.OID, 2)
	if err := db.Atomically(func(t *core.Tx) error {
		var err error
		if oids[0], err = db.NewObject(t, "Gen", nil); err != nil {
			return err
		}
		oids[1], err = db.NewObject(t, "SubGen", nil)
		return err
	}); err != nil {
		return nil, err
	}

	base = db.Now()
	for txIdx, ops := range sc.Txs {
		curTx = txIdx
		err := db.Atomically(func(t *core.Tx) error {
			for _, op := range ops {
				switch op.Kind {
				case churnRaise:
					if err := db.RaiseExplicit(t, oids[op.Source], op.Event); err != nil {
						return err
					}
				case churnCreateRule:
					ri := op.Rule
					cp := op.Coupling
					spec := core.RuleSpec{
						Name:       fmt.Sprintf("C%d", ri),
						Event:      op.Expr,
						Coupling:   couplingNames[cp],
						Priority:   op.Priority,
						ClassLevel: op.ClassLevel,
						Action: func(_ rule.ExecContext, det event.Detection) error {
							trace = append(trace, fmt.Sprintf("tx%d %s C%d %s",
								curTx, couplingNames[cp], ri, detSuffix(det, base, oids)))
							return nil
						},
					}
					if op.CondEvery != 0 {
						every := uint64(op.CondEvery)
						spec.Condition = func(_ rule.ExecContext, det event.Detection) (bool, error) {
							return (det.Last().Seq-base)%every != 0, nil
						}
					}
					if _, err := db.CreateRule(t, spec); err != nil {
						return err
					}
					for _, s := range op.Subs {
						if err := db.SubscribeRule(t, spec.Name, oids[s]); err != nil {
							return err
						}
					}
				case churnDeleteRule:
					if err := db.DeleteRule(t, fmt.Sprintf("C%d", op.Rule)); err != nil {
						return err
					}
				case churnToggle:
					name := fmt.Sprintf("C%d", op.Rule)
					if op.Enable {
						if err := db.EnableRule(t, name); err != nil {
							return err
						}
					} else if err := db.DisableRule(t, name); err != nil {
						return err
					}
				case churnSubscribe:
					if err := db.SubscribeRule(t, fmt.Sprintf("C%d", op.Rule), oids[op.Source]); err != nil {
						return err
					}
				case churnUnsubscribe:
					if err := db.UnsubscribeRule(t, fmt.Sprintf("C%d", op.Rule), oids[op.Source]); err != nil {
						return err
					}
				case churnEvolve:
					c := schema.NewClass("SubGen", db.Registry().MustClass("Gen"))
					c.Classification = schema.ReactiveClass
					c.Attr(fmt.Sprintf("g%d", op.Rule), value.TypeInt)
					if err := db.EvolveClass(t, c, ""); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("churn tx %d: %w", txIdx, err)
		}
	}
	return trace, nil
}

// ChurnDiff replays one churn seed under one strategy in both invalidation
// modes and returns a description of the first trace divergence, or ""
// when they agree.
func ChurnDiff(seed int64, strategy string) (string, error) {
	sc := GenChurnScenario(seed)
	selective, err := RunChurn(sc, strategy, false)
	if err != nil {
		return "", fmt.Errorf("selective, seed %d, %s: %w", seed, strategy, err)
	}
	global, err := RunChurn(sc, strategy, true)
	if err != nil {
		return "", fmt.Errorf("global, seed %d, %s: %w", seed, strategy, err)
	}
	n := len(selective)
	if len(global) < n {
		n = len(global)
	}
	for i := 0; i < n; i++ {
		if selective[i] != global[i] {
			return fmt.Sprintf("seed %d, %s: firing %d differs:\n  selective: %s\n  global:    %s",
				seed, strategy, i, selective[i], global[i]), nil
		}
	}
	if len(selective) != len(global) {
		return fmt.Sprintf("seed %d, %s: selective fired %d times, global %d times (common prefix agrees)",
			seed, strategy, len(selective), len(global)), nil
	}
	return "", nil
}
