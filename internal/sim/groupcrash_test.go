package sim

import (
	"os"
	"testing"

	"sentinel/internal/vfs"
)

// TestGroupCommitTorture sweeps power cuts across the group-commit
// workload: concurrent committers coalescing WAL flushes must recover
// atomically (both cells of every transaction agree) at every op boundary
// in every crash mode, with monotone durability and the fsync floor
// respected. -short strides the sweep; SENTINEL_TORTURE=full forces
// stride 1.
func TestGroupCommitTorture(t *testing.T) {
	// Coalescing shrinks the journal (that is the point), so the sweep is
	// cheap enough to run exhaustively by default.
	stride := 1
	if testing.Short() {
		stride = 5
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		stride = 1
	}
	res, err := GroupTorture(4, 8, stride)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Violations {
		if i >= 25 {
			t.Errorf("... and %d more violations", len(res.Violations)-i)
			break
		}
		t.Error(v)
	}
	if res.States < 50 {
		t.Fatalf("enumerated only %d crash states — journal too sparse", res.States)
	}
	t.Logf("enumerated %d crash states (%d distinct reopens), %d violations",
		res.States, res.Reopens, len(res.Violations))
}

// TestGroupWorkloadOracle sanity-checks the workload: every writer
// completes every round, marks are journal-monotone per writer, and the
// run actually exercised the coalescing path.
func TestGroupWorkloadOracle(t *testing.T) {
	o, err := RunGroupWorkload(vfs.NewFault(), 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Marks) != 4*6 {
		t.Fatalf("%d marks, want %d", len(o.Marks), 4*6)
	}
	last := make(map[int]int)
	for _, m := range o.Marks {
		if m.Round != last[m.Writer]+1 {
			t.Fatalf("writer %d marks out of order: round %d after %d", m.Writer, m.Round, last[m.Writer])
		}
		last[m.Writer] = m.Round
	}
	if o.Groups == 0 || o.Grouped < o.Groups {
		t.Fatalf("group-commit counters implausible: groups=%d grouped=%d", o.Groups, o.Grouped)
	}
	// The latency-injected fsyncs must have produced at least one genuinely
	// coalesced flush, or the torture sweep never covers a multi-commit
	// batch.
	if o.Grouped == o.Groups {
		t.Fatalf("every flush was a singleton (groups=%d): coalescing path not exercised", o.Groups)
	}
	t.Logf("groups=%d grouped=%d (%.2f commits/flush), %d ops journaled",
		o.Groups, o.Grouped, float64(o.Grouped)/float64(o.Groups), o.TotalOps)
}
