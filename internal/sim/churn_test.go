package sim

import (
	"os"
	"testing"
)

// TestChurnDifferential sweeps churn-heavy seeds through both consumer-
// cache invalidation modes — selective blast-radius vs the global-bump
// reference — demanding byte-identical firing traces. ≥100 seeds in the
// normal run; SENTINEL_TORTURE=full widens the sweep and adds the fifo and
// lifo strategies.
func TestChurnDifferential(t *testing.T) {
	seeds := 100
	strategies := []string{"priority"}
	if testing.Short() {
		seeds = 15
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		seeds = 250
		strategies = Strategies
	}
	fired := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, strategy := range strategies {
			diff, err := ChurnDiff(seed, strategy)
			if err != nil {
				t.Fatal(err)
			}
			if diff != "" {
				t.Fatal(diff)
			}
			trace, err := RunChurn(GenChurnScenario(seed), strategy, false)
			if err != nil {
				t.Fatal(err)
			}
			fired += len(trace)
		}
	}
	// Vacuity guard: churn scenarios must still fire rules in volume, or
	// the differ proves nothing about cache coherence under traffic.
	if fired < seeds*2 {
		t.Fatalf("only %d firings across %d churn runs: scenarios too tame", fired, seeds*len(strategies))
	}
	t.Logf("compared %d firings across %d churn seeds x %d strategies", fired, seeds, len(strategies))
}

// TestChurnScenariosChurn guards the generator against drifting into a
// raise-only corpus: across the seed sweep every churn op kind must occur.
func TestChurnScenariosChurn(t *testing.T) {
	kinds := map[int]int{}
	for seed := int64(1); seed <= 40; seed++ {
		for _, tx := range GenChurnScenario(seed).Txs {
			for _, op := range tx {
				kinds[op.Kind]++
			}
		}
	}
	for k := churnRaise; k <= churnEvolve; k++ {
		if kinds[k] == 0 {
			t.Errorf("op kind %d never generated across the sweep", k)
		}
	}
}

// TestGlobalRefOnModelSeeds replays the PR 4 model-based tester's
// scenarios through both invalidation modes: the global reference and the
// selective engine must agree on the established corpus too, not just on
// churn-shaped workloads.
func TestGlobalRefOnModelSeeds(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		seeds = 120
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		sc := GenScenario(seed)
		selective, err := RunReal(sc, "priority")
		if err != nil {
			t.Fatal(err)
		}
		global, err := RunRealGlobal(sc, "priority")
		if err != nil {
			t.Fatal(err)
		}
		if len(selective) != len(global) {
			t.Fatalf("seed %d: selective fired %d, global %d", seed, len(selective), len(global))
		}
		for i := range selective {
			if selective[i] != global[i] {
				t.Fatalf("seed %d: firing %d differs:\n  selective: %s\n  global:    %s",
					seed, i, selective[i], global[i])
			}
		}
	}
}
