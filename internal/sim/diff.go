package sim

// Model-based differential testing of the rule engine: a seeded
// pseudo-random scenario (random rules over random composite-event
// expressions, random primitive-event streams, enable/disable toggles) is
// replayed through BOTH the real engine and the naive reference model in
// model.go, and the two firing traces must be identical, line for line,
// under every conflict-resolution strategy.

import (
	"fmt"
	"io"
	"math/rand"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/rule"
	"sentinel/internal/schema"
)

// Strategies are the conflict-resolution strategies every scenario is
// replayed under.
var Strategies = []string{"priority", "fifo", "lifo"}

// eventNames is the explicit-event alphabet scenarios draw from.
var eventNames = []string{"E0", "E1", "E2", "E3"}

// Scenario is a fully deterministic script: the rule set and the
// transaction schedule. The same Scenario drives the real engine and the
// reference model.
type Scenario struct {
	Seed  int64
	Rules []DRule
	Txs   []DTx
}

// DRule describes one pseudo-random rule.
type DRule struct {
	Coupling   int    // 0 immediate, 1 deferred, 2 detached
	Priority   int    // -3..3
	Context    string // parameter context name
	TxScoped   bool
	ClassLevel string // "" = instance-level
	Subs       []int  // object indexes (0 = the Gen instance, 1 = the SubGen instance)
	CondEvery  int    // 0 = unconditional; else fire iff relSeq%CondEvery != 0
	Expr       *event.Expr
}

// DTx is one transaction: optional rule toggles (applied first), then
// explicit-event raises.
type DTx struct {
	Toggles []DToggle
	Raises  []DRaise
}

// DToggle enables or disables a rule at the start of a transaction. Each
// toggle goes through the __Rule object's Enable/Disable method, which
// itself generates an end event — i.e. it ticks the logical clock, and the
// model must tick too.
type DToggle struct {
	Rule   int
	Enable bool
}

// DRaise is one explicit primitive event.
type DRaise struct {
	Source int // 0 = Gen instance, 1 = SubGen instance
	Event  string
}

var couplingNames = []string{"immediate", "deferred", "detached"}
var contextNames = []string{"paper", "recent", "chronicle", "continuous", "cumulative"}

// randExpr builds a random event expression of bounded depth. Leaves are
// explicit primitives over the Gen/SubGen hierarchy.
func randExpr(rng *rand.Rand, depth int) *event.Expr {
	prim := func() *event.Expr {
		cls := "Gen"
		if rng.Intn(2) == 1 {
			cls = "SubGen"
		}
		return event.Primitive(event.Explicit, cls, eventNames[rng.Intn(len(eventNames))])
	}
	if depth <= 0 {
		return prim()
	}
	sub := func() *event.Expr { return randExpr(rng, depth-1) }
	switch rng.Intn(10) {
	case 0, 1:
		return prim()
	case 2:
		return event.Or(sub(), sub())
	case 3:
		return event.And(sub(), sub())
	case 4, 5:
		return event.Seq(sub(), sub())
	case 6:
		return event.Not(prim(), prim(), prim())
	case 7:
		n := 2 + rng.Intn(2)
		kids := make([]*event.Expr, n)
		for i := range kids {
			kids[i] = prim()
		}
		return event.Any(1+rng.Intn(n), kids...)
	case 8:
		if rng.Intn(2) == 0 {
			return event.Aperiodic(prim(), prim(), prim())
		}
		return event.AperiodicStar(prim(), prim(), prim())
	default:
		return event.Periodic(prim(), uint64(2+rng.Intn(4)), prim())
	}
}

// GenScenario deterministically expands a seed into a scenario.
func GenScenario(seed int64) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := &Scenario{Seed: seed}

	nRules := 3 + rng.Intn(4)
	for i := 0; i < nRules; i++ {
		r := DRule{
			Coupling: rng.Intn(3),
			Priority: rng.Intn(7) - 3,
			Context:  contextNames[rng.Intn(len(contextNames))],
			TxScoped: rng.Intn(4) == 0,
		}
		if rng.Intn(5) < 2 {
			if rng.Intn(2) == 0 {
				r.ClassLevel = "Gen"
			} else {
				r.ClassLevel = "SubGen"
			}
		} else {
			switch rng.Intn(3) {
			case 0:
				r.Subs = []int{0}
			case 1:
				r.Subs = []int{1}
			default:
				r.Subs = []int{0, 1}
			}
		}
		switch rng.Intn(3) {
		case 1:
			r.CondEvery = 2
		case 2:
			r.CondEvery = 3
		}
		for {
			r.Expr = randExpr(rng, 2)
			if r.Expr.Validate() == nil {
				break
			}
		}
		sc.Rules = append(sc.Rules, r)
	}

	nTxs := 8 + rng.Intn(5)
	for t := 0; t < nTxs; t++ {
		var tx DTx
		if t > 0 && rng.Intn(5) == 0 {
			tx.Toggles = append(tx.Toggles, DToggle{
				Rule:   rng.Intn(nRules),
				Enable: rng.Intn(3) == 0, // bias toward disabling
			})
		}
		nRaises := 2 + rng.Intn(5)
		for i := 0; i < nRaises; i++ {
			tx.Raises = append(tx.Raises, DRaise{
				Source: rng.Intn(2),
				Event:  eventNames[rng.Intn(len(eventNames))],
			})
		}
		sc.Txs = append(sc.Txs, tx)
	}
	return sc
}

// detSuffix renders the source tag plus the constituents of a detection
// relative to the scenario's clock base: "s<i> [seqs]", where i indexes the
// scenario object (0 = Gen, 1 = SubGen) whose raise completed the
// detection — the engine's subscriber OID. The model emits the same tag
// from its own bookkeeping, so the tag itself is differential-tested.
func detSuffix(det event.Detection, base uint64, oids []oid.OID) string {
	rel := make([]uint64, len(det.Constituents))
	for k, o := range det.Constituents {
		rel[k] = o.Seq - base
	}
	si := 0
	if det.Last().Source == oids[1] {
		si = 1
	}
	return fmt.Sprintf("s%d %v", si, rel)
}

// RunReal replays the scenario through the real engine (in-memory
// database) and returns the firing trace.
func RunReal(sc *Scenario, strategy string) ([]string, error) {
	return runReal(sc, strategy, false)
}

// RunRealGlobal is RunReal with GlobalConsumerInvalidation set: the
// consumer cache falls back to whole-cache epoch bumps on every mutation.
// Selective invalidation must be trace-identical to this reference on
// every scenario (see churn.go for the churn-heavy differ).
func RunRealGlobal(sc *Scenario, strategy string) ([]string, error) {
	return runReal(sc, strategy, true)
}

func runReal(sc *Scenario, strategy string, global bool) ([]string, error) {
	db, err := core.Open(core.Options{Strategy: strategy, Output: io.Discard, GlobalConsumerInvalidation: global})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	gen := schema.NewClass("Gen")
	gen.Classification = schema.ReactiveClass
	sub := schema.NewClass("SubGen", gen)
	sub.Classification = schema.ReactiveClass
	if err := db.RegisterClass(gen); err != nil {
		return nil, err
	}
	if err := db.RegisterClass(sub); err != nil {
		return nil, err
	}

	var (
		trace []string
		base  uint64
		curTx int
	)
	oids := make([]oid.OID, 2)
	err = db.Atomically(func(t *core.Tx) error {
		var err error
		if oids[0], err = db.NewObject(t, "Gen", nil); err != nil {
			return err
		}
		if oids[1], err = db.NewObject(t, "SubGen", nil); err != nil {
			return err
		}
		for i, dr := range sc.Rules {
			ri, dr := i, dr
			name := fmt.Sprintf("R%d", ri)
			spec := core.RuleSpec{
				Name:       name,
				Event:      dr.Expr,
				Coupling:   couplingNames[dr.Coupling],
				Priority:   dr.Priority,
				Context:    dr.Context,
				ClassLevel: dr.ClassLevel,
				TxScoped:   dr.TxScoped,
				Action: func(_ rule.ExecContext, det event.Detection) error {
					trace = append(trace, fmt.Sprintf("tx%d %s R%d %s",
						curTx, couplingNames[dr.Coupling], ri, detSuffix(det, base, oids)))
					return nil
				},
			}
			if dr.CondEvery != 0 {
				every := uint64(dr.CondEvery)
				spec.Condition = func(_ rule.ExecContext, det event.Detection) (bool, error) {
					return (det.Last().Seq-base)%every != 0, nil
				}
			}
			if _, err := db.CreateRule(t, spec); err != nil {
				return err
			}
			for _, s := range dr.Subs {
				if err := db.SubscribeRule(t, name, oids[s]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	base = db.Now()
	for txIdx, tx := range sc.Txs {
		curTx = txIdx
		err := db.Atomically(func(t *core.Tx) error {
			for _, tg := range tx.Toggles {
				name := fmt.Sprintf("R%d", tg.Rule)
				if tg.Enable {
					if err := db.EnableRule(t, name); err != nil {
						return err
					}
				} else if err := db.DisableRule(t, name); err != nil {
					return err
				}
			}
			for _, r := range tx.Raises {
				if err := db.RaiseExplicit(t, oids[r.Source], r.Event); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("tx %d: %w", txIdx, err)
		}
	}
	return trace, nil
}

// RunModel replays the scenario through the reference model and returns
// its firing trace.
func RunModel(sc *Scenario, strategy string) ([]string, error) {
	m := &model{strategy: strategy}
	for i, dr := range sc.Rules {
		ctx, err := event.ParseContext(dr.Context)
		if err != nil {
			return nil, err
		}
		m.rules = append(m.rules, &mrule{
			idx:        i,
			coupling:   dr.Coupling,
			priority:   dr.Priority,
			txScoped:   dr.TxScoped,
			classLevel: dr.ClassLevel,
			subs:       dr.Subs,
			condEvery:  dr.CondEvery,
			enabled:    true,
			det:        compileModel(dr.Expr, ctx),
		})
	}
	for txIdx, tx := range sc.Txs {
		for _, tg := range tx.Toggles {
			r := m.rules[tg.Rule]
			m.clock++ // the Enable/Disable end event ticks the clock
			if tg.Enable {
				r.enabled = true
			} else {
				r.disable()
			}
		}
		raises := make([]mocc, len(tx.Raises))
		for i, dr := range tx.Raises {
			cls := "Gen"
			if dr.Source == 1 {
				cls = "SubGen"
			}
			raises[i] = mocc{class: cls, method: dr.Event, when: event.Explicit, source: dr.Source}
		}
		m.runTx(txIdx, raises)
	}
	return m.trace, nil
}

// Diff replays one seed under one strategy through both implementations
// and returns a description of the first divergence, or "" when the traces
// agree.
func Diff(seed int64, strategy string) (string, error) {
	real, err := RunReal(GenScenario(seed), strategy)
	if err != nil {
		return "", fmt.Errorf("real engine, seed %d, %s: %w", seed, strategy, err)
	}
	model, err := RunModel(GenScenario(seed), strategy)
	if err != nil {
		return "", fmt.Errorf("model, seed %d, %s: %w", seed, strategy, err)
	}
	n := len(real)
	if len(model) < n {
		n = len(model)
	}
	for i := 0; i < n; i++ {
		if real[i] != model[i] {
			return fmt.Sprintf("seed %d, %s: firing %d differs:\n  real:  %s\n  model: %s",
				seed, strategy, i, real[i], model[i]), nil
		}
	}
	if len(real) != len(model) {
		return fmt.Sprintf("seed %d, %s: real fired %d times, model %d times (first agree on common prefix)",
			seed, strategy, len(real), len(model)), nil
	}
	return "", nil
}
