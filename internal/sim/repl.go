package sim

// Differential and crash-model testing of the replication stream. Two
// harnesses:
//
//   - ReplDiff replays a seeded pseudo-random workload on a primary while
//     streaming every shipped batch into a live replica, then demands the
//     two databases end byte-identical (per-OID committed images) and that
//     per-subscriber push traces — a sink on the primary and an identically
//     filtered sink on the replica — match line for line.
//
//   - ReplTorture crash-models the stream at both ends: the encoded frame
//     stream is cut at every byte boundary (a primary-side disconnect mid
//     frame must never yield a torn batch), and the follower's filesystem
//     is crash-enumerated mid-apply with the fault VFS (the reopened
//     replica must sit on a consistent prefix at or above its fsync floor,
//     and resuming from its applied LSN must converge).
//
// Neither harness uses the network: batches go straight from the ship hook
// to ApplyReplicated, which is exactly what the wire layer transports.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/oid"
	"sentinel/internal/repl"
	"sentinel/internal/vfs"
	"sentinel/internal/wal"
	"sentinel/internal/wire"
)

// replSimSchema is the first transaction of every replication scenario.
const replSimSchema = `
	class Item reactive persistent {
		attr val int
		event end method SetVal(v int) { self.val := v }
	}
	bind O0 new Item(val: 0)
	bind O1 new Item(val: 1)
	bind O2 new Item(val: 2)
`

// replStep is one transaction of a replication scenario: either a DSL
// script or the deletion of a named object.
type replStep struct {
	script     string
	deleteName string
}

// genReplSteps expands a seed into a deterministic schedule: sends on the
// three fixed objects, creation of extra objects, and deletion of extras.
func genReplSteps(seed int64, n int) []replStep {
	rng := rand.New(rand.NewSource(seed))
	alive := []string{"O0", "O1", "O2"}
	extras := []string{}
	nextExtra := 0
	steps := []replStep{{script: replSimSchema}}
	for i := 0; i < n; i++ {
		r := rng.Intn(10)
		switch {
		case r < 6: // one transaction of 1..3 sends
			var sb strings.Builder
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				fmt.Fprintf(&sb, "%s!SetVal(%d) ", alive[rng.Intn(len(alive))], i*10+j)
			}
			steps = append(steps, replStep{script: sb.String()})
		case r < 8: // create an extra object
			name := fmt.Sprintf("N%d", nextExtra)
			nextExtra++
			steps = append(steps, replStep{script: fmt.Sprintf("bind %s new Item(val: %d)", name, i)})
			alive = append(alive, name)
			extras = append(extras, name)
		default: // delete the youngest extra, if any; else a send
			if len(extras) == 0 {
				steps = append(steps, replStep{script: fmt.Sprintf("O0!SetVal(%d)", i*10)})
				break
			}
			name := extras[len(extras)-1]
			extras = extras[:len(extras)-1]
			for j, a := range alive {
				if a == name {
					alive = append(alive[:j], alive[j+1:]...)
					break
				}
			}
			steps = append(steps, replStep{deleteName: name})
		}
	}
	return steps
}

// runReplStep executes one step on db.
func runReplStep(db *core.Database, s replStep) error {
	if s.deleteName != "" {
		id, ok := db.Lookup(s.deleteName)
		if !ok {
			return fmt.Errorf("delete target %q unbound", s.deleteName)
		}
		return db.Atomically(func(t *core.Tx) error {
			return db.DeleteObject(t, id)
		})
	}
	return db.Exec(s.script)
}

// copyReplBatch deep-copies a shipped batch: the ship hook's record Data
// aliases the pooled commit scratch, valid only for the duration of the
// hook call.
func copyReplBatch(b core.ReplBatch) core.ReplBatch {
	cp := core.ReplBatch{LSN: b.LSN}
	for _, r := range b.Recs {
		data := append([]byte(nil), r.Data...)
		cp.Recs = append(cp.Recs, wal.Record{Type: r.Type, Tx: r.Tx, OID: r.OID, Data: data})
	}
	cp.Occs = append(cp.Occs, b.Occs...)
	return cp
}

// captureBatches installs a deep-copying ship hook on db.
func captureBatches(db *core.Database) *[]core.ReplBatch {
	var got []core.ReplBatch
	db.SetReplShip(func(b core.ReplBatch) {
		got = append(got, copyReplBatch(b))
	})
	return &got
}

// replState is a comparable image of a database's committed heap.
type replState struct {
	lsn  uint64
	objs map[oid.OID][]byte
}

// captureReplState snapshots the committed heap via ReplBaseState — the
// same capture a base sync ships, so "the differ passes" and "a base sync
// is faithful" are one property.
func captureReplState(db *core.Database) (*replState, error) {
	st, err := db.ReplBaseState()
	if err != nil {
		return nil, err
	}
	s := &replState{lsn: st.LSN, objs: make(map[oid.OID][]byte, len(st.Objects))}
	for _, o := range st.Objects {
		s.objs[o.ID] = o.Img
	}
	return s, nil
}

// diffReplStates returns a description of the first divergence between two
// heap images, or "".
func diffReplStates(label string, a, b *replState) string {
	if a.lsn != b.lsn {
		return fmt.Sprintf("%s: LSN %d vs %d", label, a.lsn, b.lsn)
	}
	ids := make([]oid.OID, 0, len(a.objs))
	for id := range a.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		bi, ok := b.objs[id]
		if !ok {
			return fmt.Sprintf("%s: object %v present on primary, missing on replica", label, id)
		}
		if !bytes.Equal(a.objs[id], bi) {
			return fmt.Sprintf("%s: object %v image differs (%d vs %d bytes)", label, id, len(a.objs[id]), len(bi))
		}
	}
	if len(b.objs) != len(a.objs) {
		for id := range b.objs {
			if _, ok := a.objs[id]; !ok {
				return fmt.Sprintf("%s: object %v present on replica only", label, id)
			}
		}
	}
	return ""
}

// traceSink records committed-event pushes as deterministic strings, one
// stream per logical subscriber label. Labels are registered before any
// delivery, so the map is effectively read-only during the run.
type traceSink struct {
	mu     sync.Mutex
	labels map[uint64]string
	lines  map[string][]string
}

func newTraceSink() *traceSink {
	return &traceSink{labels: make(map[uint64]string), lines: make(map[string][]string)}
}

func (s *traceSink) DeliverEvent(subID uint64, occ event.Occurrence) {
	s.mu.Lock()
	defer s.mu.Unlock()
	label := s.labels[subID]
	s.lines[label] = append(s.lines[label],
		fmt.Sprintf("seq=%d %s.%s %s src=%v args=%v", occ.Seq, occ.Class, occ.Method, occ.When, occ.Source, occ.Args))
}

// subSpec is one logical subscriber: an object index into {O0,O1,O2} and a
// sink filter.
type subSpec struct {
	obj    int
	filter core.SinkFilter
}

// genSubSpecs draws 2..4 subscriber specs from the seed's stream.
func genSubSpecs(rng *rand.Rand) []subSpec {
	n := 2 + rng.Intn(3)
	specs := make([]subSpec, n)
	for i := range specs {
		specs[i] = subSpec{obj: rng.Intn(3)}
		if rng.Intn(2) == 0 {
			specs[i].filter.Method = "SetVal"
		}
		if rng.Intn(3) == 0 {
			specs[i].filter.Moment = event.End
			specs[i].filter.MomentSet = true
		}
	}
	return specs
}

// subscribeSpecs attaches the specs to db's named objects, labelling each
// subscription sub<i> in sink.
func subscribeSpecs(db *core.Database, sink *traceSink, specs []subSpec) error {
	for i, sp := range specs {
		name := fmt.Sprintf("O%d", sp.obj)
		id, ok := db.Lookup(name)
		if !ok {
			return fmt.Errorf("%s unbound", name)
		}
		subID, err := db.SubscribeSink(id, sp.filter, sink)
		if err != nil {
			return err
		}
		sink.labels[subID] = fmt.Sprintf("sub%d", i)
	}
	return nil
}

// ReplDiff replays one seeded scenario on a primary, streams every shipped
// batch into a live replica, and returns a description of the first
// divergence — in committed heap images or in any subscriber's push trace —
// or "" when primary and replica agree exactly.
func ReplDiff(seed int64) (string, error) {
	steps := genReplSteps(seed, 15+int(seed%11))
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	specs := genSubSpecs(rng)

	pri, err := core.Open(core.Options{Dir: "p", VFS: vfs.NewMem(), Output: io.Discard})
	if err != nil {
		return "", err
	}
	defer pri.Close()
	rep, err := core.Open(core.Options{Dir: "r", VFS: vfs.NewMem(), Replica: true, Output: io.Discard})
	if err != nil {
		return "", err
	}
	defer rep.Close()

	pending := captureBatches(pri)
	drain := func() error {
		for _, b := range *pending {
			if err := rep.ApplyReplicated(b); err != nil {
				return fmt.Errorf("apply LSN %d: %w", b.LSN, err)
			}
		}
		*pending = (*pending)[:0]
		return nil
	}

	// The schema transaction replicates before either side subscribes, so
	// both sinks observe exactly the post-setup stream.
	if err := runReplStep(pri, steps[0]); err != nil {
		return "", fmt.Errorf("seed %d schema: %w", seed, err)
	}
	if err := drain(); err != nil {
		return "", fmt.Errorf("seed %d schema: %w", seed, err)
	}
	priSink, repSink := newTraceSink(), newTraceSink()
	if err := subscribeSpecs(pri, priSink, specs); err != nil {
		return "", err
	}
	if err := subscribeSpecs(rep, repSink, specs); err != nil {
		return "", err
	}

	for i, s := range steps[1:] {
		if err := runReplStep(pri, s); err != nil {
			return "", fmt.Errorf("seed %d step %d: %w", seed, i+1, err)
		}
		if err := drain(); err != nil {
			return "", fmt.Errorf("seed %d step %d: %w", seed, i+1, err)
		}
	}

	ps, err := captureReplState(pri)
	if err != nil {
		return "", err
	}
	rs, err := captureReplState(rep)
	if err != nil {
		return "", err
	}
	if d := diffReplStates(fmt.Sprintf("seed %d", seed), ps, rs); d != "" {
		return d, nil
	}

	for i := range specs {
		label := fmt.Sprintf("sub%d", i)
		p, r := priSink.lines[label], repSink.lines[label]
		n := len(p)
		if len(r) < n {
			n = len(r)
		}
		for k := 0; k < n; k++ {
			if p[k] != r[k] {
				return fmt.Sprintf("seed %d, %s: push %d differs:\n  primary: %s\n  replica: %s",
					seed, label, k, p[k], r[k]), nil
			}
		}
		if len(p) != len(r) {
			return fmt.Sprintf("seed %d, %s: primary delivered %d pushes, replica %d",
				seed, label, len(p), len(r)), nil
		}
	}
	return "", nil
}

// ReplTortureResult summarizes one replication crash sweep.
type ReplTortureResult struct {
	WireCuts    int      // byte-level stream truncation points enumerated
	CrashStates int      // (cut, mode) follower crash points enumerated
	Reopens     int      // distinct follower states reopened and checked
	Violations  []string // invariant violations, empty on success
}

// replTortureSeed fixes the schedule the crash sweeps run against; the
// sweep's value is in the cuts, not in schedule variety (ReplDiff covers
// that).
const replTortureSeed = 1

// ReplTorture crash-models the replication stream. The wire sweep cuts the
// encoded frame stream at every stride-th byte and demands the decodable
// prefix is exactly the complete frames — never a torn batch — and that a
// replica fed that prefix plus a resume from its applied LSN converges.
// The follower sweep crash-enumerates the replica's filesystem mid-apply
// in every crash mode and demands the reopened replica sits on a
// consistent prefix at or above its fsync floor, then converges on resume.
func ReplTorture(stride int) (*ReplTortureResult, error) {
	if stride < 1 {
		stride = 1
	}
	res := &ReplTortureResult{}

	// Ground truth: run the schedule once, capturing every shipped batch.
	pri, err := core.Open(core.Options{Dir: "p", VFS: vfs.NewMem(), Output: io.Discard})
	if err != nil {
		return nil, err
	}
	got := captureBatches(pri)
	for i, s := range genReplSteps(replTortureSeed, 14) {
		if err := runReplStep(pri, s); err != nil {
			pri.Close()
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	batches := make([]core.ReplBatch, 0, len(*got))
	for _, b := range *got {
		if b.LSN != 0 {
			batches = append(batches, b)
		}
	}
	pri.Close()
	if len(batches) < 8 {
		return nil, fmt.Errorf("schedule shipped only %d data batches: too sparse", len(batches))
	}

	// Per-LSN state oracle: a reference replica applies batch by batch and
	// its heap image is captured after each.
	oracle := make([]*replState, len(batches)+1)
	ref, err := openSimReplica(vfs.NewMem())
	if err != nil {
		return nil, err
	}
	if oracle[0], err = captureReplState(ref); err != nil {
		ref.Close()
		return nil, err
	}
	for i, b := range batches {
		if err := ref.ApplyReplicated(b); err != nil {
			ref.Close()
			return nil, fmt.Errorf("oracle apply LSN %d: %w", b.LSN, err)
		}
		if oracle[i+1], err = captureReplState(ref); err != nil {
			ref.Close()
			return nil, err
		}
	}
	ref.Close()

	if err := wireCutSweep(res, batches, oracle, stride); err != nil {
		return nil, err
	}
	if err := followerCrashSweep(res, batches, oracle, stride); err != nil {
		return nil, err
	}
	return res, nil
}

func openSimReplica(fs vfs.FS) (*core.Database, error) {
	return core.Open(core.Options{Dir: "r", VFS: fs, Replica: true, SyncOnCommit: true, Output: io.Discard})
}

// applyAndCheck feeds batches[from:] to rep and verifies the final heap
// matches the oracle's last entry.
func applyAndCheck(rep *core.Database, batches []core.ReplBatch, from int, oracle []*replState, label string) []string {
	var errs []string
	for _, b := range batches[from:] {
		if err := rep.ApplyReplicated(b); err != nil {
			return append(errs, fmt.Sprintf("%s: resume apply LSN %d: %v", label, b.LSN, err))
		}
	}
	final, err := captureReplState(rep)
	if err != nil {
		return append(errs, fmt.Sprintf("%s: capture after resume: %v", label, err))
	}
	if d := diffReplStates(label+" after resume", oracle[len(oracle)-1], final); d != "" {
		errs = append(errs, d)
	}
	return errs
}

// wireCutSweep cuts the encoded frame stream at byte granularity. Frames
// are length-prefixed, so every cut must decode to exactly the complete
// frames before it; the replica check runs once per distinct prefix length.
func wireCutSweep(res *ReplTortureResult, batches []core.ReplBatch, oracle []*replState, stride int) error {
	var stream []byte
	boundaries := []int{0} // stream offsets at which a frame ends
	for _, b := range batches {
		stream = wire.AppendFrame(stream, wire.Frame{
			Op:      wire.OpReplFrames,
			Payload: wire.AppendReplBatch(nil, repl.BatchToWire(b)),
		})
		boundaries = append(boundaries, len(stream))
	}

	checked := make(map[int]bool)
	for cut := 0; ; cut += stride {
		if cut > len(stream) {
			cut = len(stream)
		}
		res.WireCuts++

		// Decode the prefix; count frames and reject any torn tail.
		br := bufio.NewReader(bytes.NewReader(stream[:cut]))
		frames := 0
		var decoded []core.ReplBatch
		for {
			f, _, err := wire.ReadFrame(br, nil)
			if err != nil {
				break // torn tail (or clean EOF): the stream ends here
			}
			wb, err := wire.DecodeReplBatch(f.Payload)
			if err != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("wire cut %d: complete frame %d failed to decode: %v", cut, frames, err))
				break
			}
			decoded = append(decoded, repl.BatchFromWire(wb))
			frames++
		}
		want := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				want++
			}
		}
		if frames != want {
			res.Violations = append(res.Violations,
				fmt.Sprintf("wire cut %d: decoded %d frames, stream contains %d complete — a torn frame leaked", cut, frames, want))
		}

		// Once per distinct prefix: a replica fed the prefix sits exactly at
		// the oracle state for that LSN, and resuming converges.
		if !checked[frames] {
			checked[frames] = true
			rep, err := openSimReplica(vfs.NewMem())
			if err != nil {
				return err
			}
			label := fmt.Sprintf("wire cut %d (%d frames)", cut, frames)
			for _, b := range decoded {
				if err := rep.ApplyReplicated(b); err != nil {
					res.Violations = append(res.Violations, fmt.Sprintf("%s: apply LSN %d: %v", label, b.LSN, err))
					break
				}
			}
			if got := rep.ReplLSN(); got != uint64(frames) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: replica at LSN %d, want %d", label, got, frames))
			} else {
				if d := diffReplStates(label, oracle[frames], mustState(rep)); d != "" {
					res.Violations = append(res.Violations, d)
				}
				res.Violations = append(res.Violations, applyAndCheck(rep, batches, frames, oracle, label)...)
			}
			rep.Close()
		}
		if cut == len(stream) {
			break
		}
	}
	return nil
}

func mustState(db *core.Database) *replState {
	s, err := captureReplState(db)
	if err != nil {
		return &replState{}
	}
	return s
}

// followerCrashSweep applies the full stream to a replica on the fault VFS
// (SyncOnCommit, so each apply's fsync is journaled), then enumerates power
// cuts. Every reopened state must be a consistent prefix — the heap image
// of SOME applied LSN, at or above the fsync floor — and must accept the
// rest of the stream from exactly that point.
func followerCrashSweep(res *ReplTortureResult, batches []core.ReplBatch, oracle []*replState, stride int) error {
	fault := vfs.NewFault()
	rep, err := openSimReplica(fault)
	if err != nil {
		return err
	}
	type mark struct {
		lsn uint64
		ops int
	}
	var marks []mark
	for _, b := range batches {
		if err := rep.ApplyReplicated(b); err != nil {
			rep.CloseAbrupt()
			return fmt.Errorf("fault apply LSN %d: %w", b.LSN, err)
		}
		marks = append(marks, mark{lsn: b.LSN, ops: fault.Ops()})
	}
	rep.CloseAbrupt()
	totalOps := fault.Ops()
	floorLSN := func(k int) uint64 {
		var l uint64
		for _, m := range marks {
			if m.ops <= k && m.lsn > l {
				l = m.lsn
			}
		}
		return l
	}

	type cached struct {
		lsn  uint64
		errs []string
	}
	seen := make(map[uint32]cached)
	for _, mode := range vfs.Modes {
		for k := 0; k <= totalOps; k += stride {
			res.CrashStates++
			st := fault.CrashState(k, mode)
			h := stateHash(st)
			c, ok := seen[h]
			if !ok {
				res.Reopens++
				c = checkReplicaState(st, batches, oracle)
				seen[h] = c
			}
			label := fmt.Sprintf("follower cut %d/%d, %v", k, totalOps, mode)
			for _, e := range c.errs {
				res.Violations = append(res.Violations, label+": "+e)
			}
			if floor := floorLSN(k); c.lsn < floor {
				res.Violations = append(res.Violations,
					fmt.Sprintf("%s: recovered LSN %d below fsync floor %d", label, c.lsn, floor))
			}
		}
	}
	return nil
}

// checkReplicaState reopens a follower crash image and verifies the
// consistent-prefix and resume invariants.
func checkReplicaState(st map[string][]byte, batches []core.ReplBatch, oracle []*replState) (c struct {
	lsn  uint64
	errs []string
}) {
	defer func() {
		if r := recover(); r != nil {
			c.errs = append(c.errs, fmt.Sprintf("recovery panicked: %v", r))
		}
	}()
	mem := vfs.NewMem()
	mem.Install(st)
	rep, err := openSimReplica(mem)
	if err != nil {
		c.errs = append(c.errs, fmt.Sprintf("reopen failed: %v", err))
		return c
	}
	defer rep.CloseAbrupt()

	c.lsn = rep.ReplLSN()
	if c.lsn > uint64(len(batches)) {
		c.errs = append(c.errs, fmt.Sprintf("recovered LSN %d beyond the stream (%d batches)", c.lsn, len(batches)))
		return c
	}
	if d := diffReplStates(fmt.Sprintf("recovered LSN %d", c.lsn), oracle[c.lsn], mustState(rep)); d != "" {
		c.errs = append(c.errs, d)
		return c
	}
	c.errs = append(c.errs, applyAndCheck(rep, batches, int(c.lsn), oracle, fmt.Sprintf("recovered LSN %d", c.lsn))...)
	return c
}
