package sim

import (
	"os"
	"testing"
)

// TestReplDiffSeeds is the replication differ: across seeds, a primary and
// a live-streamed replica must end byte-identical and every subscriber's
// push trace must match line for line. ISSUE 8 demands convergence across
// at least 20 seeds.
func TestReplDiffSeeds(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		d, err := ReplDiff(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != "" {
			t.Error(d)
		}
	}
}

// TestReplTortureSweep crash-models the stream at both ends: byte-level
// wire truncation must never leak a torn batch, and every follower crash
// state must reopen onto a consistent prefix at or above its fsync floor
// and converge on resume. -short strides the sweep for tier-1 wall time;
// SENTINEL_TORTURE=full forces the exhaustive stride-1 sweep.
func TestReplTortureSweep(t *testing.T) {
	stride := 3
	if testing.Short() {
		stride = 17
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		stride = 1
	}
	res, err := ReplTorture(stride)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Violations {
		if i >= 25 {
			t.Errorf("... and %d more violations", len(res.Violations)-i)
			break
		}
		t.Error(v)
	}
	if !testing.Short() && res.WireCuts+res.CrashStates < 200 {
		t.Fatalf("enumerated only %d cuts, want >= 200", res.WireCuts+res.CrashStates)
	}
	t.Logf("wire cuts %d, follower crash states %d (%d distinct reopens), %d violations",
		res.WireCuts, res.CrashStates, res.Reopens, len(res.Violations))
}
