package sim

// The crash-state enumerator: run the scripted workload once against a
// fault VFS, then for every prefix of the journaled storage ops and every
// crash mode, materialize the filesystem a power cut at that instant
// could have left behind, reopen the database on it, and check the
// recovery invariants against the oracle. Identical states (most cuts
// between syncs collapse to the same durable image) are deduplicated by
// content hash so the sweep stays fast while still counting every
// enumerated crash point.

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"sentinel/internal/core"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// TortureResult summarizes one enumeration sweep.
type TortureResult struct {
	States     int      // (cut, mode) crash points enumerated
	Reopens    int      // distinct states actually reopened and checked
	Violations []string // invariant violations, empty on success
}

// Torture runs the workload and sweeps crash points at the given journal
// stride (1 = every op boundary). It returns an error only for harness
// failures; recovery bugs land in Violations.
func Torture(stride int) (*TortureResult, error) {
	if stride < 1 {
		stride = 1
	}
	fault := vfs.NewFault()
	o, err := RunWorkload(fault)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}

	res := &TortureResult{}
	type cached struct {
		v     int
		clock uint64
		errs  []string
	}
	seen := make(map[uint32]cached)

	for _, mode := range vfs.Modes {
		prevV := 0
		for k := 0; k <= o.TotalOps; k += stride {
			res.States++
			st := fault.CrashState(k, mode)
			h := stateHash(st)
			c, ok := seen[h]
			if !ok {
				res.Reopens++
				c.v, c.clock, c.errs = checkState(st, o)
				seen[h] = c
			}
			for _, e := range c.errs {
				res.Violations = append(res.Violations, fmt.Sprintf("cut %d/%d, %v: %s", k, o.TotalOps, mode, e))
			}
			if floor := o.floorV(k); c.v < floor {
				res.Violations = append(res.Violations,
					fmt.Sprintf("cut %d/%d, %v: recovered v=%d but tx %d committed and fsynced within the cut", k, o.TotalOps, mode, c.v, floor))
			}
			if c.v < prevV {
				res.Violations = append(res.Violations,
					fmt.Sprintf("cut %d/%d, %v: recovered v=%d < v=%d at an earlier cut — durability went backwards", k, o.TotalOps, mode, c.v, prevV))
			}
			prevV = c.v
			if floor := o.clockFloor(k); c.clock < floor {
				res.Violations = append(res.Violations,
					fmt.Sprintf("cut %d/%d, %v: recovered clock %d below checkpointed clock %d", k, o.TotalOps, mode, c.clock, floor))
			}
		}
	}
	return res, nil
}

// stateHash fingerprints a crash-state filesystem image.
func stateHash(st map[string][]byte) uint32 {
	names := make([]string, 0, len(st))
	for n := range st {
		names = append(names, n)
	}
	sort.Strings(names)
	h := crc32.NewIEEE()
	for _, n := range names {
		fmt.Fprintf(h, "%s\x00%d\x00", n, len(st[n]))
		h.Write(st[n])
		h.Write([]byte{0xff})
	}
	return h.Sum32()
}

// checkState reopens the database on a crash-state image and verifies
// every recovery invariant. It returns the recovered schedule position,
// the recovered logical clock, and the list of violations (never panics:
// a panicking recovery is itself a violation).
func checkState(st map[string][]byte, o *Oracle) (v int, clock uint64, errs []string) {
	defer func() {
		if r := recover(); r != nil {
			errs = append(errs, fmt.Sprintf("recovery panicked: %v", r))
		}
	}()
	addf := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	mem := vfs.NewMem()
	mem.Install(st)
	db, err := core.Open(core.Options{
		Dir:          WorkloadDir,
		VFS:          mem,
		SyncOnCommit: true,
		Output:       io.Discard,
	})
	if err != nil {
		addf("reopen failed: %v", err)
		return 0, 0, errs
	}
	defer db.CloseAbrupt()
	clock = db.Now()

	if problems := db.CheckIntegrity(); len(problems) > 0 {
		addf("integrity: %v", problems)
	}

	// The recovered schedule position is A.val; an unbound A means the
	// very first transaction never became durable.
	if _, ok := db.Lookup("A"); !ok {
		return 0, clock, errs
	}
	intAttr := func(obj, attr string) int64 {
		val, err := db.Eval(obj + "." + attr)
		if err != nil {
			addf("%s.%s unreadable: %v", obj, attr, err)
			return -1
		}
		n, ok := val.AsInt()
		if !ok {
			addf("%s.%s = %v, not an int", obj, attr, val)
			return -1
		}
		return n
	}

	av := intAttr("A", "val")
	v = int(av)
	if v < 1 || v > finalV {
		addf("A.val = %d outside the schedule range [1,%d]", v, finalV)
		return v, clock, errs
	}

	// No torn multi-object commits: the three sends of transaction v are
	// atomic, so the counters agree exactly across A, B and C.
	for _, obj := range []string{"A", "B", "C"} {
		if got := intAttr(obj, "val"); got != av {
			addf("torn commit: %s.val = %d but A.val = %d", obj, got, av)
		}
		if got := intAttr(obj, "hits"); got != av {
			addf("rule effect lost: %s.hits = %d, want %d (Bump fires once per send)", obj, got, av)
		}
	}

	// Watch is subscribed to A alone, at the end of transaction watchFrom.
	wantWatched := int64(0)
	if v > watchFrom {
		wantWatched = av - watchFrom
	}
	if got := intAttr("A", "watched"); got != wantWatched {
		addf("A.watched = %d, want %d at v=%d", got, wantWatched, v)
	}
	for _, obj := range []string{"B", "C"} {
		if got := intAttr(obj, "watched"); got != 0 {
			addf("%s.watched = %d, want 0 (never subscribed)", obj, got)
		}
	}

	// Schema evolution is transactional: tag exists exactly from v=8 on.
	tag, tagErr := db.Eval("A.tag")
	if v >= evolveAt {
		if s, _ := tag.AsString(); tagErr != nil || s != "fresh" {
			addf("A.tag = %v, %v at v=%d; want \"fresh\" (evolve committed in tx %d)", tag, tagErr, v, evolveAt)
		}
	} else if tagErr == nil {
		addf("A.tag readable at v=%d, before the evolve of tx %d committed", v, evolveAt)
	}

	// X lives from its creating transaction to its deleting one.
	if o.XOID != 0 {
		wantX := v >= xBornAt && v < xDeadAt
		if got := db.Exists(o.XOID); got != wantX {
			addf("X (oid %v) exists=%v at v=%d, want %v", o.XOID, got, v, wantX)
		}
	}

	// Rules are rebuilt from their persisted objects.
	for _, name := range []string{"Bump", "Watch"} {
		if db.LookupRule(name) == nil {
			addf("rule %q lost in recovery", name)
		}
	}

	// The named event and the index arrive with transaction watchFrom.
	if v >= watchFrom {
		if _, ok := db.LookupEvent("ValChanged"); !ok {
			addf("named event ValChanged lost at v=%d", v)
		}
		idx := db.Index("Item", "val")
		if idx == nil {
			addf("index Item.val lost at v=%d", v)
		} else if got := len(idx.Lookup(value.Int(av))); got != 3 {
			addf("index Item.val[%d] has %d entries, want 3 (A,B,C)", av, got)
		}
	}

	// Liveness: the recovered database must accept new work and the rule
	// machinery must still fire.
	err = db.Atomically(func(t *core.Tx) error {
		a, _ := db.Lookup("A")
		_, err := db.Send(t, a, "SetVal", value.Int(av+1))
		return err
	})
	if err != nil {
		addf("post-recovery send failed: %v", err)
	} else {
		if got := intAttr("A", "val"); got != av+1 {
			addf("post-recovery A.val = %d, want %d", got, av+1)
		}
		if got := intAttr("A", "hits"); got != av+1 {
			addf("post-recovery A.hits = %d, want %d (Bump must still fire)", got, av+1)
		}
	}
	return v, clock, errs
}
