package sim

// groupcrash.go tortures the group-commit path: concurrent committers
// coalesce their WAL batches through the leader/follower protocol while a
// fault VFS journals every storage op, and the crash-state enumerator then
// proves that a power cut at ANY op boundary leaves a state where (a)
// every transaction inside a coalesced flush is atomic — each writer's
// two cells always agree, no batch is ever torn mid-transaction, (b)
// durability is monotone in the cut position, and (c) every commit whose
// shared fsync completed before the cut survives recovery. Together these
// show coalescing never weakens the single-commit crash contract.

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// GroupDir is the database directory for the group-commit workload.
const GroupDir = "gdb"

// GroupMark records the journal position right after one writer's commit
// returned. The commit's (possibly shared) fsync is part of those ops, so
// any crash at or beyond Ops must recover at least Round for that writer.
type GroupMark struct {
	Writer, Round, Ops int
}

// GroupOracle is the ground truth for the group-commit sweep.
type GroupOracle struct {
	Writers, Rounds int
	SetupOps        int // journal position after the schema/bind commit
	Marks           []GroupMark
	TotalOps        int
	Groups          uint64 // coalesced flushes the run produced
	Grouped         uint64 // commits carried by those flushes
}

// floor returns the highest round writer w durably committed within the
// first k journaled ops.
func (o *GroupOracle) floor(w, k int) int {
	r := 0
	for _, m := range o.Marks {
		if m.Writer == w && m.Ops <= k && m.Round > r {
			r = m.Round
		}
	}
	return r
}

// groupSchema builds the Cell class and one left/right pair per writer,
// DSL-defined so recovery needs no Go schema hook.
func groupSchema(writers int) string {
	var b strings.Builder
	b.WriteString(`
		class Cell reactive persistent {
			attr v int
			event end method SetV(n int) { self.v := n }
		}
	`)
	for w := 0; w < writers; w++ {
		fmt.Fprintf(&b, "bind L%d new Cell(v: 0)\n", w)
		fmt.Fprintf(&b, "bind R%d new Cell(v: 0)\n", w)
	}
	return b.String()
}

// RunGroupWorkload drives writers concurrent committers, each committing
// rounds transactions that set BOTH its cells to the round number in one
// transaction, through the group-commit path (SyncOnCommit plus a small
// window so flushes coalesce under contention). The fault VFS is wrapped
// in a latency layer that charges each fsync a realistic delay — with
// instant fsyncs committers never overlap and every flush degenerates to
// a singleton, which would leave the coalesced-batch recovery path
// untested. The latency layer only sleeps; the op journal (and hence the
// crash-state enumeration) is the fault VFS's own.
func RunGroupWorkload(fault *vfs.Fault, writers, rounds int) (*GroupOracle, error) {
	db, err := core.Open(core.Options{
		Dir:               GroupDir,
		VFS:               vfs.NewLatency(fault, 300*time.Microsecond, 0),
		SyncOnCommit:      true,
		GroupCommitWindow: 200 * time.Microsecond,
		Output:            io.Discard,
	})
	if err != nil {
		return nil, err
	}
	defer db.CloseAbrupt()

	if err := db.Exec(groupSchema(writers)); err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	o := &GroupOracle{Writers: writers, Rounds: rounds, SetupOps: fault.Ops()}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		errs = make([]error, writers)
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l, _ := db.Lookup(fmt.Sprintf("L%d", w))
			r, _ := db.Lookup(fmt.Sprintf("R%d", w))
			for i := 1; i <= rounds; i++ {
				err := db.Atomically(func(t *core.Tx) error {
					if err := db.Set(t, l, "v", value.Int(int64(i))); err != nil {
						return err
					}
					return db.Set(t, r, "v", value.Int(int64(i)))
				})
				if err != nil {
					errs[w] = fmt.Errorf("writer %d round %d: %w", w, i, err)
					return
				}
				mu.Lock()
				o.Marks = append(o.Marks, GroupMark{Writer: w, Round: i, Ops: fault.Ops()})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s := db.Stats().Storage
	o.Groups, o.Grouped = s.CommitGroups, s.GroupedCommits
	o.TotalOps = fault.Ops()
	return o, nil
}

// GroupTorture sweeps every crash point of the group-commit workload at
// the given journal stride, in every crash mode, checking batch atomicity,
// durability floors and monotonicity. Harness failures return an error;
// recovery bugs land in Violations.
func GroupTorture(writers, rounds, stride int) (*TortureResult, error) {
	if stride < 1 {
		stride = 1
	}
	fault := vfs.NewFault()
	o, err := RunGroupWorkload(fault, writers, rounds)
	if err != nil {
		return nil, fmt.Errorf("group workload: %w", err)
	}

	res := &TortureResult{}
	type cached struct {
		vals []int // recovered round per writer; nil = setup not yet durable
		errs []string
	}
	seen := make(map[uint32]cached)

	for _, mode := range vfs.Modes {
		prev := make([]int, writers)
		for k := 0; k <= o.TotalOps; k += stride {
			res.States++
			st := fault.CrashState(k, mode)
			h := stateHash(st)
			c, ok := seen[h]
			if !ok {
				res.Reopens++
				c.vals, c.errs = checkGroupState(st, o)
				seen[h] = c
			}
			for _, e := range c.errs {
				res.Violations = append(res.Violations, fmt.Sprintf("cut %d/%d, %v: %s", k, o.TotalOps, mode, e))
			}
			if c.vals == nil {
				if k >= o.SetupOps {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"cut %d/%d, %v: setup commit fsynced at op %d but not recovered", k, o.TotalOps, mode, o.SetupOps))
				}
				continue
			}
			for w := 0; w < writers; w++ {
				if floor := o.floor(w, k); c.vals[w] < floor {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"cut %d/%d, %v: writer %d recovered round %d but round %d committed and fsynced within the cut",
						k, o.TotalOps, mode, w, c.vals[w], floor))
				}
				if c.vals[w] < prev[w] {
					res.Violations = append(res.Violations, fmt.Sprintf(
						"cut %d/%d, %v: writer %d recovered round %d < %d at an earlier cut — durability went backwards",
						k, o.TotalOps, mode, w, c.vals[w], prev[w]))
				}
				prev[w] = c.vals[w]
			}
		}
	}
	return res, nil
}

// checkGroupState reopens one crash-state image and verifies per-writer
// batch atomicity. It returns the recovered round per writer (nil when the
// setup transaction itself is not durable) and any violations.
func checkGroupState(st map[string][]byte, o *GroupOracle) (vals []int, errs []string) {
	defer func() {
		if r := recover(); r != nil {
			errs = append(errs, fmt.Sprintf("recovery panicked: %v", r))
		}
	}()
	addf := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	mem := vfs.NewMem()
	mem.Install(st)
	db, err := core.Open(core.Options{
		Dir:          GroupDir,
		VFS:          mem,
		SyncOnCommit: true,
		Output:       io.Discard,
	})
	if err != nil {
		addf("reopen failed: %v", err)
		return nil, errs
	}
	defer db.CloseAbrupt()

	if _, ok := db.Lookup("L0"); !ok {
		return nil, errs // setup never became durable; nothing else to check
	}
	if problems := db.CheckIntegrity(); len(problems) > 0 {
		addf("integrity: %v", problems)
	}

	vals = make([]int, o.Writers)
	for w := 0; w < o.Writers; w++ {
		read := func(name string) (int64, bool) {
			v, err := db.Eval(name + ".v")
			if err != nil {
				addf("%s.v unreadable: %v", name, err)
				return 0, false
			}
			n, ok := v.AsInt()
			if !ok {
				addf("%s.v = %v, not an int", name, v)
				return 0, false
			}
			return n, true
		}
		l, ok1 := read(fmt.Sprintf("L%d", w))
		r, ok2 := read(fmt.Sprintf("R%d", w))
		if !ok1 || !ok2 {
			continue
		}
		// Atomicity of each transaction inside a coalesced flush: the two
		// cells are written by the same transaction, always together.
		if l != r {
			addf("torn group-commit batch: writer %d recovered L=%d R=%d", w, l, r)
		}
		if l < 0 || l > int64(o.Rounds) {
			addf("writer %d recovered round %d outside [0,%d]", w, l, o.Rounds)
		}
		vals[w] = int(l)
	}
	return vals, errs
}
