package sim

// The scripted torture workload: a deterministic schedule of transactions
// exercising every durability-relevant subsystem — object creation and
// deletion, rule firings (class-level and instance-subscribed), schema
// evolution, named-event definition, index creation, and checkpoints —
// run against a fault-injecting VFS that journals every storage
// operation. The Oracle records, per committed transaction and per
// checkpoint, how far the op journal had advanced, so the crash-state
// enumerator can compute exactly what any post-crash database MUST still
// contain.

import (
	"fmt"
	"io"

	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/value"
	"sentinel/internal/vfs"
)

// WorkloadDir is the database directory inside the simulated filesystem.
const WorkloadDir = "db"

// finalV is the schedule length: each position v sends SetVal(v) to the
// three named Items inside one transaction.
const finalV = 26

// watchFrom: the Watch rule is subscribed to A at the end of transaction
// watchFrom, so A.watched counts the sends of transactions > watchFrom.
const watchFrom = 5

// evolveAt is the transaction whose script evolves Item to add the tag
// attribute before its sends.
const evolveAt = 8

// xBornAt / xDeadAt bound the lifetime of the scratch object X.
const (
	xBornAt = 9
	xDeadAt = 13
)

// ckptAfter lists the positions followed by an explicit checkpoint.
var ckptAfter = map[int]bool{7: true, 10: true, 15: true, 20: true, 24: true}

// workloadSchema is transaction v=1: classes, rules, bindings, and the
// first round of sends. Everything is DSL-defined so it survives reopen
// without a Go schema hook.
const workloadSchema = `
	class Item reactive persistent {
		attr name string
		attr val int
		attr hits int
		attr watched int
		event end method SetVal(v int) { self.val := v }
	}
	rule Bump for Item on end Item::SetVal(int v)
		then self.hits := self.hits + 1
	rule Watch on end Item::SetVal(int v)
		then self.watched := self.watched + 1
	bind A new Item(name: "a")
	bind B new Item(name: "b")
	bind C new Item(name: "c")
	A!SetVal(1) B!SetVal(1) C!SetVal(1)
`

// evolveScript is transaction v=8: schema evolution adding tag, then the
// usual sends — all in one transaction, so tag's existence is exactly
// "v >= 8" in every recovered state.
const evolveScript = `
	evolve class Item reactive persistent {
		attr name string
		attr val int
		attr hits int
		attr watched int
		attr tag string = "fresh"
		event end method SetVal(v int) { self.val := v }
	}
	A!SetVal(8) B!SetVal(8) C!SetVal(8)
`

// Mark records the op-journal position right after transaction V's commit
// returned. With SyncOnCommit the commit's WAL fsync is part of the ops
// counted, so any crash at or beyond Ops — in every crash mode — must
// recover at least V.
type Mark struct {
	V     int
	Ops   int
	Clock uint64
}

// CkptMark records a completed checkpoint: Clock is the database clock
// when the checkpoint was taken, Ops the journal position after it
// finished (index rename and WAL truncation included).
type CkptMark struct {
	Ops   int
	Clock uint64
}

// Oracle is everything the enumerator knows about the workload's ground
// truth.
type Oracle struct {
	Marks    []Mark
	Ckpts    []CkptMark
	XOID     oid.OID
	TotalOps int
}

// floorV returns the highest schedule position whose commit is wholly
// contained in the first k journaled ops.
func (o *Oracle) floorV(k int) int {
	v := 0
	for _, m := range o.Marks {
		if m.Ops <= k && m.V > v {
			v = m.V
		}
	}
	return v
}

// clockFloor returns the highest checkpoint clock wholly contained in the
// first k ops.
func (o *Oracle) clockFloor(k int) uint64 {
	var c uint64
	for _, m := range o.Ckpts {
		if m.Ops <= k && m.Clock > c {
			c = m.Clock
		}
	}
	return c
}

// RunWorkload executes the full schedule against the given fault VFS and
// returns the oracle. The database is abandoned with CloseAbrupt — the
// enumerator inspects crash states, never a clean shutdown.
func RunWorkload(fault *vfs.Fault) (*Oracle, error) {
	db, err := core.Open(core.Options{
		Dir:          WorkloadDir,
		VFS:          fault,
		SyncOnCommit: true,
		Output:       io.Discard,
	})
	if err != nil {
		return nil, err
	}
	defer db.CloseAbrupt()

	o := &Oracle{}
	mark := func(v int) {
		o.Marks = append(o.Marks, Mark{V: v, Ops: fault.Ops(), Clock: db.Now()})
	}

	send := func(v int) error {
		return db.Atomically(func(t *core.Tx) error {
			for _, name := range []string{"A", "B", "C"} {
				id, ok := db.Lookup(name)
				if !ok {
					return fmt.Errorf("name %q unbound at v=%d", name, v)
				}
				if _, err := db.Send(t, id, "SetVal", value.Int(int64(v))); err != nil {
					return err
				}
			}
			return nil
		})
	}

	for v := 1; v <= finalV; v++ {
		switch v {
		case 1:
			if err := db.Exec(workloadSchema); err != nil {
				return nil, fmt.Errorf("v=1 schema: %w", err)
			}
		case evolveAt:
			if err := db.Exec(evolveScript); err != nil {
				return nil, fmt.Errorf("v=%d evolve: %w", v, err)
			}
		case watchFrom:
			// Sends plus the subscription, event definition and index —
			// one transaction, so "v >= 5" implies all three exist.
			err := db.Atomically(func(t *core.Tx) error {
				for _, name := range []string{"A", "B", "C"} {
					id, _ := db.Lookup(name)
					if _, err := db.Send(t, id, "SetVal", value.Int(int64(v))); err != nil {
						return err
					}
				}
				a, _ := db.Lookup("A")
				if err := db.SubscribeRule(t, "Watch", a); err != nil {
					return err
				}
				if _, err := db.DefineEvent(t, "ValChanged", "end Item::SetVal(int v)"); err != nil {
					return err
				}
				_, err := db.CreateIndex(t, "Item", "val")
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("v=%d: %w", v, err)
			}
		case xBornAt:
			err := db.Atomically(func(t *core.Tx) error {
				var err error
				if o.XOID, err = db.NewObject(t, "Item", map[string]value.Value{"name": value.Str("x")}); err != nil {
					return err
				}
				for _, name := range []string{"A", "B", "C"} {
					id, _ := db.Lookup(name)
					if _, err := db.Send(t, id, "SetVal", value.Int(int64(v))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("v=%d: %w", v, err)
			}
		case xDeadAt:
			err := db.Atomically(func(t *core.Tx) error {
				if err := db.DeleteObject(t, o.XOID); err != nil {
					return err
				}
				for _, name := range []string{"A", "B", "C"} {
					id, _ := db.Lookup(name)
					if _, err := db.Send(t, id, "SetVal", value.Int(int64(v))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("v=%d: %w", v, err)
			}
		default:
			if err := send(v); err != nil {
				return nil, fmt.Errorf("v=%d: %w", v, err)
			}
		}
		mark(v)

		if ckptAfter[v] {
			clock := db.Now()
			if err := db.Checkpoint(); err != nil {
				return nil, fmt.Errorf("checkpoint after v=%d: %w", v, err)
			}
			o.Ckpts = append(o.Ckpts, CkptMark{Ops: fault.Ops(), Clock: clock})
		}
	}
	o.TotalOps = fault.Ops()
	return o, nil
}
