package sim

import (
	"testing"
)

// TestSnapshotDiffer replays seeded interleaved multi-transaction
// schedules — serial and concurrent committers, aborts, creates, deletes,
// overlapping snapshots — and requires every snapshot to read exactly the
// committed state captured at its open: snapshot isolation, differential
// against the naive committed-state model.
func TestSnapshotDiffer(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= seeds; seed++ {
		if d, err := DiffSnapshots(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		} else if d != "" {
			t.Errorf("snapshot isolation violated:\n%s", d)
		}
	}
}

// TestSnapshotScheduleShape sanity-checks the generator: schedules must
// actually interleave snapshots with writers (a schedule with no open
// snapshot during a write would test nothing).
func TestSnapshotScheduleShape(t *testing.T) {
	overlapped := 0
	for seed := int64(1); seed <= 20; seed++ {
		sc := GenSnapSchedule(seed)
		open := 0
		for _, st := range sc.Steps {
			switch st.Kind {
			case snapOpen:
				open++
			case snapClose:
				open--
			case snapWrite, snapWriteTwo, snapCreate, snapDelete:
				if open > 0 {
					overlapped++
				}
			}
		}
		if open != 0 {
			t.Fatalf("seed %d: %d snapshots left open at end of schedule", seed, open)
		}
	}
	if overlapped < 20 {
		t.Fatalf("only %d writes ran under an open snapshot across 20 seeds — schedules too tame", overlapped)
	}
}

// TestSnapshotStress races writers against snapshot readers with real
// goroutine interleavings; run under -race. Any torn read, half-visible
// transaction or broken global invariant is a violation.
func TestSnapshotStress(t *testing.T) {
	rounds := 150
	if testing.Short() {
		rounds = 40
	}
	violations, err := SnapStress(4, rounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range violations {
		if i >= 25 {
			t.Errorf("... and %d more violations", len(violations)-i)
			break
		}
		t.Error(v)
	}
}
