package sim

// The golden scenario matrix: one hand-written scenario per
// operator × coupling cell, replayed under every conflict-resolution
// strategy, with the firing trace checked against files under
// testdata/golden/. The model-diff tests (diff_test.go) catch the engine
// and the reference model drifting APART; the goldens catch them drifting
// TOGETHER — a semantics change that slips through differential testing
// because both sides changed. Regenerate with `make golden`
// (SENTINEL_GOLDEN_REGEN=1), and justify any diff in the commit that
// carries it: CI fails on unexplained drift.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sentinel/internal/event"
)

// goldenOps covers every Snoop operator (§4.3) with a fixed expression
// over the explicit-event alphabet.
var goldenOps = []struct {
	name string
	expr func() *event.Expr
}{
	{"primitive", func() *event.Expr { return prim("E0") }},
	{"or", func() *event.Expr { return event.Or(prim("E0"), prim("E1")) }},
	{"and", func() *event.Expr { return event.And(prim("E0"), prim("E1")) }},
	{"seq", func() *event.Expr { return event.Seq(prim("E0"), prim("E1")) }},
	{"not", func() *event.Expr { return event.Not(prim("E0"), prim("E2"), prim("E1")) }},
	{"any", func() *event.Expr { return event.Any(2, prim("E0"), prim("E1"), prim("E2")) }},
	{"aperiodic", func() *event.Expr { return event.Aperiodic(prim("E0"), prim("E1"), prim("E2")) }},
	{"aperiodic_star", func() *event.Expr { return event.AperiodicStar(prim("E0"), prim("E1"), prim("E2")) }},
	{"periodic", func() *event.Expr { return event.Periodic(prim("E0"), 2, prim("E2")) }},
}

func prim(name string) *event.Expr { return event.Primitive(event.Explicit, "Gen", name) }

// goldenScenario builds the cell's scenario: the operator under test as
// rule R0 plus a primitive competitor R1 with a different priority (so the
// strategies have an order to disagree about), both at the cell's
// coupling, over a fixed raise schedule that exercises every operator
// (initiator/terminator pairs, the NOT window, enough ticks for the
// periodic, mid-stream toggles).
func goldenScenario(expr *event.Expr, coupling int) *Scenario {
	return &Scenario{
		Rules: []DRule{
			{Coupling: coupling, Priority: 2, Context: "recent", Subs: []int{0, 1}, Expr: expr},
			{Coupling: coupling, Priority: -1, Context: "recent", Subs: []int{0, 1}, Expr: prim("E0")},
		},
		Txs: []DTx{
			{Raises: []DRaise{{0, "E0"}, {0, "E1"}, {0, "E2"}}},
			{Raises: []DRaise{{1, "E1"}, {0, "E0"}, {0, "E3"}, {0, "E1"}}},
			{Toggles: []DToggle{{Rule: 1, Enable: false}},
				Raises: []DRaise{{1, "E0"}, {1, "E2"}, {0, "E1"}}},
			{Toggles: []DToggle{{Rule: 1, Enable: true}},
				Raises: []DRaise{{0, "E0"}, {1, "E0"}, {0, "E1"}, {0, "E2"}, {1, "E3"}}},
		},
	}
}

// TestGoldenMatrix replays every operator × coupling cell under every
// strategy and compares against the checked-in goldens. The trace must
// also agree with the reference model first — a cell whose golden is
// "wrong" can only be regenerated once both implementations agree on the
// new semantics.
func TestGoldenMatrix(t *testing.T) {
	regen := os.Getenv("SENTINEL_GOLDEN_REGEN") == "1"
	for _, op := range goldenOps {
		for ci, coupling := range []string{"immediate", "deferred", "detached"} {
			op, ci, coupling := op, ci, coupling
			t.Run(op.name+"/"+coupling, func(t *testing.T) {
				t.Parallel()
				sc := goldenScenario(op.expr(), ci)
				var buf strings.Builder
				for _, strategy := range Strategies {
					real, err := RunReal(sc, strategy)
					if err != nil {
						t.Fatal(err)
					}
					model, err := RunModel(sc, strategy)
					if err != nil {
						t.Fatal(err)
					}
					if d := diffTraces(real, model); d != "" {
						t.Fatalf("engine and model disagree under %s (fix that before touching goldens):\n%s", strategy, d)
					}
					fmt.Fprintf(&buf, "# strategy: %s\n", strategy)
					for _, line := range real {
						buf.WriteString(line)
						buf.WriteByte('\n')
					}
				}
				path := filepath.Join("testdata", "golden", op.name+"_"+coupling+".golden")
				if regen {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (run `make golden` and commit the result): %v", path, err)
				}
				if got := buf.String(); got != string(want) {
					t.Fatalf("firing trace drifted from %s.\nIf the semantics change is intended, run `make golden`, inspect the diff, and commit it.\n--- golden ---\n%s--- got ---\n%s",
						path, want, got)
				}
			})
		}
	}
}

// diffTraces returns a description of the first divergence, or "".
func diffTraces(a, b []string) string {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d:\n  engine: %s\n  model:  %s", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("length: engine %d lines, model %d lines", len(a), len(b))
	}
	return ""
}
