package sim

import (
	"fmt"
	"os"
	"testing"
)

// WorkerCounts are the detached-pool sizes every parallel scenario is
// replayed under (matching the supported sweep in cmd/sentinel-bench).
var WorkerCounts = []int{1, 2, 4, 8}

// TestParallelDetachedConsistency is the linearizability-style check for
// the conflict-aware executor pool: across seeds × worker counts ×
// strategies, the serial (immediate + deferred) trace must match the
// reference model exactly, and the detached firings projected onto each
// subscriber object must match the model's per-subscriber order — no lost,
// duplicated, or locally-reordered firing, at any pool size. ISSUE 5 asks
// for at least 100 seeds in the full sweep; -short keeps a representative
// slice for tier-1 wall time and SENTINEL_TORTURE=full widens it further.
func TestParallelDetachedConsistency(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		seeds = 250
	}
	detached := 0
	for _, workers := range WorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				for _, strategy := range Strategies {
					diff, err := DiffParallel(seed, strategy, workers)
					if err != nil {
						t.Fatal(err)
					}
					if diff != "" {
						t.Fatal(diff)
					}
				}
			}
		})
	}
	// Vacuity guard: the sweep must actually exercise detached firings, or
	// the per-subscriber comparison proves nothing about the pool.
	for seed := int64(1); seed <= int64(seeds); seed++ {
		trace, err := RunModel(GenScenario(seed), "priority")
		if err != nil {
			t.Fatal(err)
		}
		detached += len(projectModel(trace).Detached[0]) + len(projectModel(trace).Detached[1])
	}
	if detached < seeds {
		t.Fatalf("only %d detached firings across %d seeds: scenarios too tame to exercise the pool", detached, seeds)
	}
}

// TestParallelHarnessDetectsDivergence guards the parallel differ against
// vacuity: the pooled engine under one strategy compared against the model
// under a DIFFERENT strategy must diverge on at least one seed. The
// divergence must show up through the projections — per-subscriber
// detached order or the serial trace — or the weakened (projection-based)
// comparison has lost its teeth.
func TestParallelHarnessDetectsDivergence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		real, err := RunRealParallel(GenScenario(seed), "priority", 2)
		if err != nil {
			t.Fatal(err)
		}
		modelTrace, err := RunModel(GenScenario(seed), "lifo")
		if err != nil {
			t.Fatal(err)
		}
		want := projectModel(modelTrace)
		if diffLines("serial", real.Serial, want.Serial) != "" {
			return // diverged, as it must
		}
		for si := 0; si < 2; si++ {
			if diffLines("detached", real.Detached[si], want.Detached[si]) != "" {
				return // diverged, as it must
			}
		}
	}
	t.Fatal("priority-strategy pooled engine matched lifo-strategy model on 20 seeds: the projection comparison cannot detect divergence")
}
