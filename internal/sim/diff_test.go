package sim

import (
	"os"
	"testing"
)

// TestDifferentialStreams replays seeded pseudo-random scenarios through
// the real engine and the reference model under every conflict-resolution
// strategy and demands identical firing traces. ISSUE 4 asks for at least
// 50 streams; -short keeps a representative slice for tier-1 wall time and
// SENTINEL_TORTURE=full widens the sweep.
func TestDifferentialStreams(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	if os.Getenv("SENTINEL_TORTURE") == "full" {
		seeds = 300
	}
	fired := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, strategy := range Strategies {
			diff, err := Diff(seed, strategy)
			if err != nil {
				t.Fatal(err)
			}
			if diff != "" {
				t.Fatal(diff)
			}
			trace, err := RunModel(GenScenario(seed), strategy)
			if err != nil {
				t.Fatal(err)
			}
			fired += len(trace)
		}
	}
	// A vacuously green differential test (no rule ever fires) proves
	// nothing; demand a healthy firing volume across the corpus.
	if fired < seeds*3 {
		t.Fatalf("only %d firings across %d seed/strategy runs: scenarios too tame to exercise the engine", fired, seeds*3)
	}
	t.Logf("compared %d firings across %d scenarios x %d strategies", fired/1, seeds, len(Strategies))
}

// TestHarnessDetectsDivergence guards the harness itself against
// vacuity: comparing the real engine under one strategy against the model
// under a DIFFERENT strategy must surface a divergence on at least one
// seed. If even deliberately mismatched semantics compare equal, the
// trace comparison is broken.
func TestHarnessDetectsDivergence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		real, err := RunReal(GenScenario(seed), "priority")
		if err != nil {
			t.Fatal(err)
		}
		model, err := RunModel(GenScenario(seed), "lifo")
		if err != nil {
			t.Fatal(err)
		}
		if len(real) != len(model) {
			return // diverged: lengths differ
		}
		for i := range real {
			if real[i] != model[i] {
				return // diverged: traces differ
			}
		}
	}
	t.Fatal("priority-strategy engine matched lifo-strategy model on 20 seeds: the comparison cannot detect divergence")
}

// TestScenarioDeterminism pins the generator: the same seed must expand to
// the same scenario and the same model trace, or differential failures
// stop being reproducible.
func TestScenarioDeterminism(t *testing.T) {
	a, err := RunModel(GenScenario(7), "priority")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunModel(GenScenario(7), "priority")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic model: %d vs %d firings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic model at firing %d: %q vs %q", i, a[i], b[i])
		}
	}
}
