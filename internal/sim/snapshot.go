package sim

// snapshot.go extends the differential tester to interleaved multi-
// transaction schedules over the MVCC layer: a seeded pseudo-random script
// of committing writers (serial and concurrent), aborting writers, object
// creates/deletes, and read-only snapshots is replayed against the real
// engine while a naive model tracks the committed state. Every snapshot
// captures the model's state at open and must keep reading exactly that
// state — value for value, instance set for instance set — however many
// commits land after it. A separate racy stress (SnapStress) drives true
// goroutine interleavings and checks the invariants a snapshot may never
// break: no torn per-object reads, no half-visible transactions.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"sentinel/internal/core"
	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// Snapshot-schedule step kinds.
const (
	snapWrite    = iota // one transaction writing a few live objects
	snapWriteTwo        // concurrent single-object transactions (commit-order permutation)
	snapAbort           // a transaction that writes, then rolls back
	snapCreate          // commit a new object
	snapDelete          // commit a delete of a live object
	snapOpen            // acquire a snapshot into a slot
	snapRead            // read every object through a slot's snapshot
	snapClose           // release a slot's snapshot
)

// SnapStep is one step of a snapshot schedule.
type SnapStep struct {
	Kind int
	Slot int     // snapshot slot, for snapOpen/snapRead/snapClose
	Objs []int   // object indexes (writes, delete target)
	Vals []int64 // values aligned with Objs (writes)
}

// SnapSchedule is a deterministic interleaved multi-transaction script.
type SnapSchedule struct {
	Seed  int64
	NObj  int // objects created up front
	Slots int // snapshot slots
	Steps []SnapStep
}

// GenSnapSchedule deterministically expands a seed into a schedule. The
// generator tracks liveness and slot state so every step is applicable.
func GenSnapSchedule(seed int64) *SnapSchedule {
	rng := rand.New(rand.NewSource(seed))
	sc := &SnapSchedule{Seed: seed, NObj: 4 + rng.Intn(4), Slots: 2 + rng.Intn(2)}

	live := make([]bool, sc.NObj)
	for i := range live {
		live[i] = true
	}
	open := make([]bool, sc.Slots)
	liveCount := sc.NObj
	pickLive := func() int {
		for {
			if i := rng.Intn(len(live)); live[i] {
				return i
			}
		}
	}

	nSteps := 30 + rng.Intn(20)
	var nextVal int64
	for s := 0; s < nSteps; s++ {
		st := SnapStep{Kind: rng.Intn(8)}
		switch st.Kind {
		case snapWrite, snapAbort:
			n := 1 + rng.Intn(3)
			seen := map[int]bool{}
			for i := 0; i < n && liveCount > len(seen); i++ {
				o := pickLive()
				if seen[o] {
					continue
				}
				seen[o] = true
				nextVal++
				st.Objs = append(st.Objs, o)
				st.Vals = append(st.Vals, nextVal)
			}
		case snapWriteTwo:
			n := 2 + rng.Intn(3)
			seen := map[int]bool{}
			for i := 0; i < n && liveCount > len(seen); i++ {
				o := pickLive()
				if seen[o] {
					continue
				}
				seen[o] = true
				nextVal++
				st.Objs = append(st.Objs, o)
				st.Vals = append(st.Vals, nextVal)
			}
			if len(st.Objs) < 2 {
				st.Kind = snapWrite
			}
		case snapCreate:
			nextVal++
			st.Objs = []int{len(live)}
			st.Vals = []int64{nextVal}
			live = append(live, true)
			liveCount++
		case snapDelete:
			if liveCount <= 2 {
				s--
				continue
			}
			o := pickLive()
			st.Objs = []int{o}
			live[o] = false
			liveCount--
		case snapOpen:
			st.Slot = rng.Intn(sc.Slots)
			if open[st.Slot] {
				s--
				continue
			}
			open[st.Slot] = true
		case snapRead:
			st.Slot = rng.Intn(sc.Slots)
			if !open[st.Slot] {
				s--
				continue
			}
		case snapClose:
			st.Slot = rng.Intn(sc.Slots)
			if !open[st.Slot] {
				s--
				continue
			}
			open[st.Slot] = false
		}
		sc.Steps = append(sc.Steps, st)
	}
	// Read, then release every still-open snapshot so the run ends drained.
	for slot := range open {
		if open[slot] {
			sc.Steps = append(sc.Steps,
				SnapStep{Kind: snapRead, Slot: slot},
				SnapStep{Kind: snapClose, Slot: slot})
		}
	}
	return sc
}

// snapModelState is the naive committed-state model: per-object values and
// liveness, copied wholesale into each snapshot slot at open.
type snapModelState struct {
	val  map[int]int64
	live map[int]bool
}

func (m *snapModelState) clone() *snapModelState {
	c := &snapModelState{val: make(map[int]int64, len(m.val)), live: make(map[int]bool, len(m.live))}
	for k, v := range m.val {
		c.val[k] = v
	}
	for k, v := range m.live {
		c.live[k] = v
	}
	return c
}

// RunSnapSchedule replays the schedule through the real engine, asserting
// after every read step that each snapshot still sees exactly the
// committed state captured when it was opened: same values, same instance
// set, deleted-later objects still readable, created-later objects
// invisible. It returns the violations (empty on success).
func RunSnapSchedule(sc *SnapSchedule) ([]string, error) {
	db, err := core.Open(core.Options{Output: io.Discard})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	cls := schema.NewClass("SnapObj")
	cls.Attr("x", value.TypeInt)
	if err := db.RegisterClass(cls); err != nil {
		return nil, err
	}

	model := &snapModelState{val: map[int]int64{}, live: map[int]bool{}}
	ids := make([]oid.OID, 0, sc.NObj)
	err = db.Atomically(func(t *core.Tx) error {
		for i := 0; i < sc.NObj; i++ {
			id, err := db.NewObject(t, "SnapObj", map[string]value.Value{"x": value.Int(0)})
			if err != nil {
				return err
			}
			ids = append(ids, id)
			model.val[i], model.live[i] = 0, true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	type slotState struct {
		tx  *core.Tx
		cap *snapModelState
	}
	slots := make([]slotState, sc.Slots)
	var violations []string
	addf := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// checkSlot re-reads the entire object universe through one snapshot.
	checkSlot := func(step int, slot int) {
		st := slots[slot]
		for o := range model.val {
			got, err := db.Get(st.tx, ids[o], "x")
			if !st.cap.live[o] {
				if err == nil {
					addf("seed %d step %d slot %d: object %d readable but dead at snapshot (got %v)",
						sc.Seed, step, slot, o, got)
				}
				continue
			}
			if err != nil {
				addf("seed %d step %d slot %d: object %d unreadable: %v (want %d)",
					sc.Seed, step, slot, o, err, st.cap.val[o])
				continue
			}
			if n, _ := got.AsInt(); n != st.cap.val[o] {
				addf("seed %d step %d slot %d: object %d = %d, want %d (snapshot leaked a later commit)",
					sc.Seed, step, slot, o, n, st.cap.val[o])
			}
		}
		// The instance scan must be exactly the captured live set.
		want := map[oid.OID]bool{}
		for o, l := range st.cap.live {
			if l {
				want[ids[o]] = true
			}
		}
		got := db.InstancesOfAt(st.tx, "SnapObj")
		if len(got) != len(want) {
			addf("seed %d step %d slot %d: InstancesOfAt has %d instances, want %d",
				sc.Seed, step, slot, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				addf("seed %d step %d slot %d: InstancesOfAt leaked %v", sc.Seed, step, slot, id)
			}
		}
	}

	for stepIdx, st := range sc.Steps {
		switch st.Kind {
		case snapWrite:
			err := db.Atomically(func(t *core.Tx) error {
				for i, o := range st.Objs {
					if err := db.Set(t, ids[o], "x", value.Int(st.Vals[i])); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("step %d write: %w", stepIdx, err)
			}
			for i, o := range st.Objs {
				model.val[o] = st.Vals[i]
			}
		case snapWriteTwo:
			// Concurrent single-object committers over disjoint objects:
			// every commit-order permutation yields the same final state,
			// and each commit installs at its own LSN.
			var wg sync.WaitGroup
			errs := make([]error, len(st.Objs))
			for i := range st.Objs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = db.Atomically(func(t *core.Tx) error {
						return db.Set(t, ids[st.Objs[i]], "x", value.Int(st.Vals[i]))
					})
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("step %d concurrent write %d: %w", stepIdx, i, err)
				}
				model.val[st.Objs[i]] = st.Vals[i]
			}
		case snapAbort:
			sentinel := fmt.Errorf("scripted abort")
			err := db.Atomically(func(t *core.Tx) error {
				for i, o := range st.Objs {
					if err := db.Set(t, ids[o], "x", value.Int(st.Vals[i])); err != nil {
						return err
					}
				}
				return sentinel
			})
			if err != sentinel {
				return nil, fmt.Errorf("step %d abort: err = %v, want scripted abort", stepIdx, err)
			}
			// Model untouched: the rollback must leave no trace.
		case snapCreate:
			o := st.Objs[0]
			err := db.Atomically(func(t *core.Tx) error {
				id, err := db.NewObject(t, "SnapObj", map[string]value.Value{"x": value.Int(st.Vals[0])})
				ids = append(ids, id)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("step %d create: %w", stepIdx, err)
			}
			model.val[o], model.live[o] = st.Vals[0], true
		case snapDelete:
			o := st.Objs[0]
			err := db.Atomically(func(t *core.Tx) error {
				return db.DeleteObject(t, ids[o])
			})
			if err != nil {
				return nil, fmt.Errorf("step %d delete: %w", stepIdx, err)
			}
			model.live[o] = false
		case snapOpen:
			slots[st.Slot] = slotState{tx: db.BeginSnapshot(), cap: model.clone()}
		case snapRead:
			checkSlot(stepIdx, st.Slot)
		case snapClose:
			checkSlot(stepIdx, st.Slot) // final read before release
			db.Abort(slots[st.Slot].tx)
			slots[st.Slot] = slotState{}
		}
	}

	// With every snapshot released, one more commit (to any still-live
	// object) sweeps the chains; the MVCC baggage must drain to zero.
	drain := -1
	for o := range model.val {
		if model.live[o] {
			drain = o
			break
		}
	}
	if drain >= 0 {
		if err := db.Atomically(func(t *core.Tx) error {
			return db.Set(t, ids[drain], "x", value.Int(-1))
		}); err != nil {
			return nil, err
		}
	}
	if s := db.Stats().Storage; s.VersionsLive != 0 || s.SnapshotsActive != 0 {
		addf("seed %d: MVCC state not drained after release: versions=%d snapshots=%d",
			sc.Seed, s.VersionsLive, s.SnapshotsActive)
	}
	return violations, nil
}

// DiffSnapshots generates and replays one seeded snapshot schedule,
// returning the first violation ("" when the engine upholds snapshot
// isolation for the whole schedule).
func DiffSnapshots(seed int64) (string, error) {
	violations, err := RunSnapSchedule(GenSnapSchedule(seed))
	if err != nil {
		return "", err
	}
	if len(violations) > 0 {
		return violations[0], nil
	}
	return "", nil
}

// SnapStress races writers against snapshot readers with true goroutine
// interleavings (run under -race). Each writer owns a pair of objects and
// keeps the pair-sum invariant: every transaction moves an amount from the
// left to the right cell, so l+r == pairSum at every commit boundary.
// Readers repeatedly snapshot and assert (a) per-object reads are stable
// within a snapshot, (b) each pair sums to pairSum — a snapshot that saw
// half a transaction breaks it — and (c) the global sum over all pairs
// holds. Returns the violations observed.
func SnapStress(writers, rounds, readers int) ([]string, error) {
	const pairSum = 1000
	db, err := core.Open(core.Options{Output: io.Discard})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	cls := schema.NewClass("Cell")
	cls.Attr("x", value.TypeInt)
	if err := db.RegisterClass(cls); err != nil {
		return nil, err
	}
	left := make([]oid.OID, writers)
	right := make([]oid.OID, writers)
	err = db.Atomically(func(t *core.Tx) error {
		for w := 0; w < writers; w++ {
			var err error
			if left[w], err = db.NewObject(t, "Cell", map[string]value.Value{"x": value.Int(pairSum)}); err != nil {
				return err
			}
			if right[w], err = db.NewObject(t, "Cell", map[string]value.Value{"x": value.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var (
		mu         sync.Mutex
		violations []string
	)
	addf := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < rounds; i++ {
				move := int64(1 + rng.Intn(10))
				err := db.Atomically(func(t *core.Tx) error {
					lv, err := db.Get(t, left[w], "x")
					if err != nil {
						return err
					}
					rv, err := db.Get(t, right[w], "x")
					if err != nil {
						return err
					}
					l, _ := lv.AsInt()
					r, _ := rv.AsInt()
					if err := db.Set(t, left[w], "x", value.Int(l-move)); err != nil {
						return err
					}
					return db.Set(t, right[w], "x", value.Int(r+move))
				})
				if err != nil {
					addf("writer %d round %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.BeginSnapshot()
				global := int64(0)
				for w := 0; w < writers; w++ {
					readCell := func(id oid.OID) (int64, bool) {
						a, err := db.Get(snap, id, "x")
						if err != nil {
							addf("reader %d: %v", r, err)
							return 0, false
						}
						b, err := db.Get(snap, id, "x")
						if err != nil {
							addf("reader %d: re-read: %v", r, err)
							return 0, false
						}
						av, _ := a.AsInt()
						bv, _ := b.AsInt()
						if av != bv {
							addf("reader %d: torn read on %v: %d then %d", r, id, av, bv)
							return 0, false
						}
						return av, true
					}
					l, ok1 := readCell(left[w])
					rr, ok2 := readCell(right[w])
					if !ok1 || !ok2 {
						continue
					}
					if l+rr != pairSum {
						addf("reader %d: pair %d sums to %d, want %d (snapshot saw half a transaction)",
							r, w, l+rr, pairSum)
					}
					global += l + rr
				}
				if global != int64(writers)*pairSum {
					addf("reader %d: global sum %d, want %d", r, global, int64(writers)*pairSum)
				}
				db.Abort(snap)
			}
		}(r)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	return violations, nil
}
