package schema

import (
	"fmt"
	"sort"

	"sentinel/internal/value"
)

// RuleDecl is a class-level rule declared inside a class definition (paper
// §4.7, Fig. 9: "since class level rules model the behavior of a particular
// class, they are declared within the class definition itself"). The
// declaration is translated by the core layer into a first-class rule object
// that auto-subscribes to every instance of the class.
type RuleDecl struct {
	Name string
	// Event is a SentinelQL event expression, e.g.
	// `begin Person::Marry(Person spouse)`.
	Event string
	// Condition and Action are either SentinelQL statements/expressions or
	// `go:name` references into the registered-function registry.
	Condition string
	Action    string
	// Coupling is "immediate", "deferred" or "detached" (default immediate).
	Coupling string
	Priority int
}

// Class is a runtime class definition. Build one with the exported fields
// and method/attribute adders, then register it with a Registry, which
// finalizes it (resolves inheritance, computes the field layout, validates
// the event interface).
type Class struct {
	Name string
	// Bases are the direct superclasses, in declaration order (multiple
	// inheritance is supported; linearization is C3).
	Bases []*Class
	// Classification marks the class passive/reactive/notifiable (§3.2).
	// A class inherits reactivity/notifiability from its bases.
	Classification Classification
	// Abstract classes cannot be instantiated.
	Abstract bool
	// Persistent marks instances for storage by default (the zg-pos role).
	Persistent bool
	// RuleDecls are the class-level rules declared with the class.
	RuleDecls []RuleDecl

	ownAttrs   []*Attribute
	ownMethods map[string]*Method

	// Computed at finalization:
	finalized bool
	mro       []*Class
	layout    []*Attribute          // slot -> attribute, full instance layout
	attrIndex map[string]*Attribute // name -> attribute (after inheritance)
	methods   map[string]*Method    // name -> method (after inheritance/override)
	subOf     map[string]bool       // transitive superclass set incl. self
}

// NewClass returns an unfinalized class with the given name and direct bases.
func NewClass(name string, bases ...*Class) *Class {
	return &Class{
		Name:       name,
		Bases:      bases,
		ownMethods: make(map[string]*Method),
	}
}

// AddAttribute appends an attribute definition. It panics after
// finalization.
func (c *Class) AddAttribute(a *Attribute) *Class {
	c.mustBeOpen()
	c.ownAttrs = append(c.ownAttrs, a)
	return c
}

// Attr is shorthand for AddAttribute with a public attribute.
func (c *Class) Attr(name string, t *value.Type) *Class {
	return c.AddAttribute(&Attribute{Name: name, Type: t, Visibility: Public})
}

// AddMethod appends a method definition. It panics after finalization or on
// duplicate names within the class.
func (c *Class) AddMethod(m *Method) *Class {
	c.mustBeOpen()
	if c.ownMethods == nil {
		c.ownMethods = make(map[string]*Method)
	}
	if _, dup := c.ownMethods[m.Name]; dup {
		panic(fmt.Sprintf("schema: duplicate method %s::%s", c.Name, m.Name))
	}
	c.ownMethods[m.Name] = m
	return c
}

// AddRule appends a class-level rule declaration.
func (c *Class) AddRule(r RuleDecl) *Class {
	c.mustBeOpen()
	c.RuleDecls = append(c.RuleDecls, r)
	return c
}

func (c *Class) mustBeOpen() {
	if c.finalized {
		panic(fmt.Sprintf("schema: class %s is finalized", c.Name))
	}
}

// Finalized reports whether the class has been registered and finalized.
func (c *Class) Finalized() bool { return c.finalized }

// MRO returns the C3 method-resolution order (self first). Only valid after
// finalization.
func (c *Class) MRO() []*Class { return c.mro }

// Layout returns the instance field layout: slot index -> attribute.
func (c *Class) Layout() []*Attribute { return c.layout }

// NumSlots returns the number of instance fields.
func (c *Class) NumSlots() int { return len(c.layout) }

// AttributeNamed resolves an attribute by name through the inheritance
// chain; nil if absent.
func (c *Class) AttributeNamed(name string) *Attribute { return c.attrIndex[name] }

// MethodNamed resolves a method by name through the MRO (the most-derived
// override wins); nil if absent.
func (c *Class) MethodNamed(name string) *Method { return c.methods[name] }

// Methods returns all resolved methods sorted by name.
func (c *Class) Methods() []*Method {
	out := make([]*Method, 0, len(c.methods))
	for _, m := range c.methods {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Attributes returns the full instance layout (inherited first).
func (c *Class) Attributes() []*Attribute { return c.layout }

// OwnRuleDecls returns the rule declarations of this class only.
func (c *Class) OwnRuleDecls() []RuleDecl { return c.RuleDecls }

// AllRuleDecls returns rule declarations of this class and all ancestors
// (ancestors first), implementing rule inheritance for class-level rules.
func (c *Class) AllRuleDecls() []RuleDecl {
	var out []RuleDecl
	for i := len(c.mro) - 1; i >= 0; i-- {
		out = append(out, c.mro[i].RuleDecls...)
	}
	return out
}

// IsSubclassOf reports whether c is other or a (transitive) subclass of it.
func (c *Class) IsSubclassOf(other *Class) bool {
	if other == nil {
		return false
	}
	if !c.finalized {
		// Fall back to a graph walk for unfinalized classes.
		if c == other {
			return true
		}
		for _, b := range c.Bases {
			if b.IsSubclassOf(other) {
				return true
			}
		}
		return false
	}
	return c.subOf[other.Name]
}

// Reactive reports whether instances generate events (own classification or
// inherited).
func (c *Class) Reactive() bool { return c.Classification.Reactive() }

// Notifiable reports whether instances consume events.
func (c *Class) Notifiable() bool { return c.Classification.Notifiable() }

// EventInterface returns the methods (resolved through inheritance) that are
// declared as event generators, sorted by name — the visible event interface
// of the reactive class (§3.1).
func (c *Class) EventInterface() []*Method {
	var out []*Method
	for _, m := range c.Methods() {
		if m.EventGen != GenNone {
			out = append(out, m)
		}
	}
	return out
}

// String returns the class name.
func (c *Class) String() string { return c.Name }

// finalize resolves the class: computes the MRO, inherits classification,
// merges attributes into the instance layout, resolves method overrides, and
// validates the event interface. Bases must already be finalized.
func (c *Class) finalize() error {
	if c.finalized {
		return nil
	}
	for _, b := range c.Bases {
		if !b.finalized {
			return fmt.Errorf("schema: base %s of %s is not registered", b.Name, c.Name)
		}
	}
	mro, err := linearize(c)
	if err != nil {
		return err
	}
	c.mro = mro

	// Inherit classification: reactive/notifiable are sticky down the
	// hierarchy (deriving from Reactive makes the subclass reactive,
	// Fig. 8).
	reactive := c.Classification.Reactive()
	notifiable := c.Classification.Notifiable()
	for _, b := range c.Bases {
		reactive = reactive || b.Reactive()
		notifiable = notifiable || b.Notifiable()
		c.Persistent = c.Persistent || b.Persistent
	}
	switch {
	case reactive && notifiable:
		c.Classification = ReactiveNotifiableClass
	case reactive:
		c.Classification = ReactiveClass
	case notifiable:
		c.Classification = NotifiableClass
	}

	// Field layout: walk the MRO from the root down so base attributes come
	// first and keep stable slots for subclasses; reject name collisions
	// between distinct defining classes.
	c.attrIndex = make(map[string]*Attribute)
	c.layout = nil
	for i := len(c.mro) - 1; i >= 0; i-- {
		for _, a := range c.mro[i].ownAttrs {
			if prev, ok := c.attrIndex[a.Name]; ok && prev != a {
				return fmt.Errorf("schema: class %s inherits conflicting attribute %q from %s and %s",
					c.Name, a.Name, prev.owner.Name, c.mro[i].Name)
			}
			if _, ok := c.attrIndex[a.Name]; ok {
				continue // diamond: same attribute reached twice
			}
			if a.owner == nil {
				a.owner = c.mro[i]
				a.slot = -1
			}
			cp := *a
			cp.slot = len(c.layout)
			c.attrIndex[a.Name] = &cp
			c.layout = append(c.layout, &cp)
		}
	}

	// Method resolution: first definition along the MRO wins.
	c.methods = make(map[string]*Method)
	for _, k := range c.mro {
		for name, m := range k.ownMethods {
			if m.owner == nil {
				m.owner = k
			}
			m.memoizeParamNames()
			if _, ok := c.methods[name]; !ok {
				c.methods[name] = m
			}
		}
	}
	// Validate overrides: an override must keep the arity of what it
	// overrides (covariant returns and parameter types are not modelled).
	for name, m := range c.methods {
		for _, k := range c.mro {
			if k == m.owner {
				continue
			}
			if base, ok := k.ownMethods[name]; ok && len(base.Params) != len(m.Params) {
				return fmt.Errorf("schema: %s::%s overrides %s::%s with different arity",
					m.owner.Name, name, k.Name, name)
			}
		}
	}
	if !c.Abstract {
		for name, m := range c.methods {
			if m.Body == nil {
				return fmt.Errorf("schema: concrete class %s has abstract method %s (from %s)",
					c.Name, name, m.owner.Name)
			}
		}
	}

	// The event interface is only meaningful on reactive classes.
	if !c.Reactive() {
		for _, m := range c.methods {
			if m.EventGen != GenNone {
				return fmt.Errorf("schema: method %s::%s declares events but class %s is not reactive",
					m.owner.Name, m.Name, c.Name)
			}
		}
	}

	c.subOf = make(map[string]bool, len(c.mro))
	for _, k := range c.mro {
		c.subOf[k.Name] = true
	}
	c.finalized = true
	return nil
}
