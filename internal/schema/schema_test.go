package schema

import (
	"strings"
	"testing"

	"sentinel/internal/value"
)

func body(ret value.Value) Body {
	return func(ctx CallContext) (value.Value, error) { return ret, nil }
}

func newReg(t *testing.T) *Registry {
	t.Helper()
	return NewRegistry()
}

func TestSingleInheritanceMRO(t *testing.T) {
	reg := newReg(t)
	a := NewClass("A")
	a.AddMethod(&Method{Name: "M", Visibility: Public, Body: body(value.Int(1))})
	reg.MustRegister(a)
	b := NewClass("B", a)
	reg.MustRegister(b)
	c := NewClass("C", b)
	reg.MustRegister(c)

	mro := c.MRO()
	if len(mro) != 3 || mro[0] != c || mro[1] != b || mro[2] != a {
		t.Fatalf("MRO(C) = %v", mro)
	}
	if !c.IsSubclassOf(a) || !c.IsSubclassOf(c) || a.IsSubclassOf(c) {
		t.Error("IsSubclassOf wrong")
	}
	if c.MethodNamed("M") == nil || c.MethodNamed("M").Owner() != a {
		t.Error("method inheritance broken")
	}
}

func TestDiamondC3(t *testing.T) {
	reg := newReg(t)
	root := NewClass("Root")
	root.Attr("x", value.TypeInt)
	reg.MustRegister(root)
	left := NewClass("Left", root)
	left.AddMethod(&Method{Name: "M", Visibility: Public, Body: body(value.Str("left"))})
	reg.MustRegister(left)
	right := NewClass("Right", root)
	right.AddMethod(&Method{Name: "M", Visibility: Public, Body: body(value.Str("right"))})
	reg.MustRegister(right)
	bottom := NewClass("Bottom", left, right)
	reg.MustRegister(bottom)

	// C3: Bottom, Left, Right, Root — local precedence order preserved,
	// Root appears once.
	names := make([]string, 0, 4)
	for _, k := range bottom.MRO() {
		names = append(names, k.Name)
	}
	if got := strings.Join(names, ","); got != "Bottom,Left,Right,Root" {
		t.Fatalf("MRO = %s", got)
	}
	// Left's M wins (earlier in MRO).
	if bottom.MethodNamed("M").Owner() != left {
		t.Error("diamond method resolution should pick Left")
	}
	// The diamond attribute x exists exactly once.
	count := 0
	for _, a := range bottom.Attributes() {
		if a.Name == "x" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("attribute x appears %d times in the layout", count)
	}
}

func TestInconsistentHierarchyRejected(t *testing.T) {
	// The classic C3 failure: order conflicts between bases.
	reg := newReg(t)
	o := NewClass("O")
	reg.MustRegister(o)
	a := NewClass("A", o)
	reg.MustRegister(a)
	b := NewClass("B", o)
	reg.MustRegister(b)
	ab := NewClass("AB", a, b)
	reg.MustRegister(ab)
	ba := NewClass("BA", b, a)
	reg.MustRegister(ba)
	bad := NewClass("Bad", ab, ba)
	if err := reg.Register(bad); err == nil {
		t.Fatal("inconsistent hierarchy should fail to linearize")
	}
}

func TestConflictingAttributesRejected(t *testing.T) {
	reg := newReg(t)
	a := NewClass("A1")
	a.Attr("x", value.TypeInt)
	reg.MustRegister(a)
	b := NewClass("B1")
	b.Attr("x", value.TypeString)
	reg.MustRegister(b)
	c := NewClass("C1", a, b)
	if err := reg.Register(c); err == nil || !strings.Contains(err.Error(), "conflicting attribute") {
		t.Fatalf("expected conflicting-attribute error, got %v", err)
	}
}

func TestLayoutSlotsStableAcrossSubclassing(t *testing.T) {
	reg := newReg(t)
	base := NewClass("Base2")
	base.Attr("a", value.TypeInt)
	base.Attr("b", value.TypeString)
	reg.MustRegister(base)
	sub := NewClass("Sub2", base)
	sub.Attr("c", value.TypeFloat)
	reg.MustRegister(sub)

	// Base attributes keep their leading slots in the subclass layout.
	if base.AttributeNamed("a").Slot() != sub.AttributeNamed("a").Slot() {
		t.Error("slot of inherited attribute moved")
	}
	if sub.AttributeNamed("c").Slot() != 2 {
		t.Errorf("subclass attribute slot = %d, want 2", sub.AttributeNamed("c").Slot())
	}
	if sub.NumSlots() != 3 {
		t.Errorf("NumSlots = %d, want 3", sub.NumSlots())
	}
}

func TestOverrideArityChecked(t *testing.T) {
	reg := newReg(t)
	a := NewClass("A3")
	a.AddMethod(&Method{Name: "M", Params: []Param{{Name: "x", Type: value.TypeInt}}, Visibility: Public, Body: body(value.Nil)})
	reg.MustRegister(a)
	b := NewClass("B3", a)
	b.AddMethod(&Method{Name: "M", Visibility: Public, Body: body(value.Nil)}) // arity 0 vs 1
	if err := reg.Register(b); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("expected arity error, got %v", err)
	}
}

func TestAbstractClasses(t *testing.T) {
	reg := newReg(t)
	a := NewClass("Abs")
	a.Abstract = true
	a.AddMethod(&Method{Name: "M", Visibility: Public}) // no body: abstract
	reg.MustRegister(a)

	// A concrete subclass must implement M.
	bad := NewClass("Con1", a)
	if err := reg.Register(bad); err == nil || !strings.Contains(err.Error(), "abstract method") {
		t.Fatalf("expected abstract-method error, got %v", err)
	}
	good := NewClass("Con2", a)
	good.AddMethod(&Method{Name: "M", Visibility: Public, Body: body(value.Nil)})
	if err := reg.Register(good); err != nil {
		t.Fatalf("concrete subclass with override: %v", err)
	}
}

func TestEventInterfaceRequiresReactive(t *testing.T) {
	reg := newReg(t)
	c := NewClass("Quiet")
	c.AddMethod(&Method{Name: "M", Visibility: Public, EventGen: GenEnd, Body: body(value.Nil)})
	if err := reg.Register(c); err == nil || !strings.Contains(err.Error(), "not reactive") {
		t.Fatalf("expected not-reactive error, got %v", err)
	}
}

func TestEventInterfaceListing(t *testing.T) {
	reg := newReg(t)
	c := NewClass("Loud")
	c.Classification = ReactiveClass
	c.AddMethod(&Method{Name: "A", Visibility: Public, EventGen: GenEnd, Body: body(value.Nil)})
	c.AddMethod(&Method{Name: "B", Visibility: Public, EventGen: GenBoth, Body: body(value.Nil)})
	c.AddMethod(&Method{Name: "C", Visibility: Public, Body: body(value.Nil)})
	reg.MustRegister(c)
	ifc := c.EventInterface()
	if len(ifc) != 2 || ifc[0].Name != "A" || ifc[1].Name != "B" {
		t.Fatalf("EventInterface = %v", ifc)
	}
}

func TestClassificationInheritance(t *testing.T) {
	reg := newReg(t)
	r := NewClass("R5")
	r.Classification = ReactiveClass
	reg.MustRegister(r)
	n := NewClass("N5")
	n.Classification = NotifiableClass
	reg.MustRegister(n)
	both := NewClass("RN5", r, n)
	reg.MustRegister(both)
	if both.Classification != ReactiveNotifiableClass {
		t.Fatalf("classification = %v, want reactive+notifiable", both.Classification)
	}
	if !both.Reactive() || !both.Notifiable() {
		t.Error("Reactive()/Notifiable() wrong")
	}
}

func TestRuleDeclInheritance(t *testing.T) {
	reg := newReg(t)
	a := NewClass("A6")
	a.Classification = ReactiveClass
	a.AddRule(RuleDecl{Name: "base-rule", Event: "end A6::M"})
	a.AddMethod(&Method{Name: "M", Visibility: Public, EventGen: GenEnd, Body: body(value.Nil)})
	reg.MustRegister(a)
	b := NewClass("B6", a)
	b.AddRule(RuleDecl{Name: "sub-rule", Event: "end A6::M"})
	reg.MustRegister(b)
	all := b.AllRuleDecls()
	if len(all) != 2 || all[0].Name != "base-rule" || all[1].Name != "sub-rule" {
		t.Fatalf("AllRuleDecls = %v", all)
	}
	if len(b.OwnRuleDecls()) != 1 {
		t.Fatal("OwnRuleDecls should only contain sub-rule")
	}
}

func TestRegistry(t *testing.T) {
	reg := newReg(t)
	a := NewClass("A7")
	reg.MustRegister(a)
	if err := reg.Register(NewClass("A7")); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := reg.Register(NewClass("")); err == nil {
		t.Error("empty name should fail")
	}
	unregBase := NewClass("Floating")
	if err := reg.Register(NewClass("B7", unregBase)); err == nil {
		t.Error("unregistered base should fail")
	}
	if reg.Lookup("A7") != a || reg.Lookup("nope") != nil {
		t.Error("Lookup wrong")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	b := NewClass("B7b", a)
	reg.MustRegister(b)
	subs := reg.Subclasses(a)
	if len(subs) != 2 {
		t.Fatalf("Subclasses = %v", subs)
	}
}

func TestCheckArgs(t *testing.T) {
	reg := newReg(t)
	c := NewClass("A8")
	m := &Method{
		Name:       "M",
		Params:     []Param{{Name: "x", Type: value.TypeFloat}, {Name: "s", Type: value.TypeString}},
		Visibility: Public,
		Body:       body(value.Nil),
	}
	c.AddMethod(m)
	reg.MustRegister(c)

	// Int widens into the float parameter.
	args, err := m.CheckArgs([]value.Value{value.Int(3), value.Str("ok")})
	if err != nil {
		t.Fatal(err)
	}
	if args[0].Kind() != value.KindFloat {
		t.Errorf("arg 0 not widened: %v", args[0])
	}
	if _, err := m.CheckArgs([]value.Value{value.Int(3)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := m.CheckArgs([]value.Value{value.Str("x"), value.Str("y")}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestSignatureRendering(t *testing.T) {
	reg := newReg(t)
	c := NewClass("A9")
	m := &Method{Name: "Pay", Params: []Param{{Name: "amt", Type: value.TypeFloat}}, Visibility: Public, Body: body(value.Nil)}
	c.AddMethod(m)
	reg.MustRegister(c)
	if got := m.Signature(); got != "A9::Pay(float amt)" {
		t.Errorf("Signature = %q", got)
	}
}

func TestDuplicateMethodPanics(t *testing.T) {
	c := NewClass("A10")
	c.AddMethod(&Method{Name: "M", Body: body(value.Nil)})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddMethod did not panic")
		}
	}()
	c.AddMethod(&Method{Name: "M", Body: body(value.Nil)})
}

func TestFinalizedClassClosed(t *testing.T) {
	reg := newReg(t)
	c := NewClass("A11")
	reg.MustRegister(c)
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a finalized class did not panic")
		}
	}()
	c.Attr("x", value.TypeInt)
}

func TestSelfInheritanceRejected(t *testing.T) {
	c := NewClass("Selfish")
	c.Bases = []*Class{c}
	c.mro = nil
	if _, err := linearize(c); err == nil {
		t.Fatal("self-inheritance should fail")
	}
}

func TestStringers(t *testing.T) {
	if Public.String() != "public" || Protected.String() != "protected" || Private.String() != "private" {
		t.Error("Visibility.String wrong")
	}
	if GenBoth.String() != "begin && end" || GenNone.String() != "none" {
		t.Error("EventGen.String wrong")
	}
	if !GenBoth.Begin() || !GenBoth.End() || GenBegin.End() || GenEnd.Begin() {
		t.Error("EventGen Begin/End wrong")
	}
	if PassiveClass.String() != "passive" || ReactiveNotifiableClass.String() != "reactive+notifiable" {
		t.Error("Classification.String wrong")
	}
}

func TestAttributeDefaults(t *testing.T) {
	a := &Attribute{Name: "x", Type: value.TypeFloat, Default: value.Int(5)}
	if got := a.InitialValue(); !got.Equal(value.Float(5)) || got.Kind() != value.KindFloat {
		t.Errorf("InitialValue = %v", got)
	}
	b := &Attribute{Name: "y", Type: value.TypeString}
	if got := b.InitialValue(); !got.Equal(value.Str("")) {
		t.Errorf("zero InitialValue = %v", got)
	}
	r := &Attribute{Name: "z", Type: value.TypeRef("X")}
	if got := r.InitialValue(); !got.IsNil() {
		t.Errorf("ref InitialValue = %v", got)
	}
}

func TestReplaceAndRestore(t *testing.T) {
	reg := newReg(t)
	v1 := NewClass("Thing")
	v1.Attr("a", value.TypeInt)
	reg.MustRegister(v1)

	v2 := NewClass("Thing")
	v2.Attr("a", value.TypeInt)
	v2.Attr("b", value.TypeString)
	old, err := reg.Replace(v2)
	if err != nil {
		t.Fatal(err)
	}
	if old != v1 || reg.Lookup("Thing") != v2 {
		t.Fatal("replace did not swap")
	}
	if !v2.Finalized() || v2.NumSlots() != 2 {
		t.Fatal("replacement not finalized")
	}
	reg.Restore(v1)
	if reg.Lookup("Thing") != v1 {
		t.Fatal("restore did not swap back")
	}

	// Replacing an unknown class fails.
	if _, err := reg.Replace(NewClass("Ghost")); err == nil {
		t.Fatal("unknown class accepted")
	}
	// A class with subclasses cannot be replaced.
	sub := NewClass("SubThing", v1)
	reg.MustRegister(sub)
	v3 := NewClass("Thing")
	if _, err := reg.Replace(v3); err == nil {
		t.Fatal("class with subclasses replaced")
	}
	// A replacement cannot extend the class it replaces.
	selfBase := NewClass("SubThing", v1) // replacing SubThing, extending Thing is fine...
	if _, err := reg.Replace(selfBase); err != nil {
		t.Fatalf("legal replace rejected: %v", err)
	}
	circular := NewClass("Thing", reg.Lookup("Thing"))
	if _, err := reg.Replace(circular); err == nil {
		t.Fatal("self-extending replacement accepted")
	}
}
