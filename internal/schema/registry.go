package schema

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the schema catalog: the set of registered, finalized classes.
// It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]*Class
	order   []string // registration order, for deterministic iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Class)}
}

// Register finalizes the class (resolving inheritance and layout) and adds
// it to the registry. All bases must already be registered here.
func (r *Registry) Register(c *Class) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.Name == "" {
		return fmt.Errorf("schema: class with empty name")
	}
	if _, dup := r.classes[c.Name]; dup {
		return fmt.Errorf("schema: class %s already registered", c.Name)
	}
	for _, b := range c.Bases {
		if got, ok := r.classes[b.Name]; !ok || got != b {
			return fmt.Errorf("schema: base %s of %s is not registered in this registry", b.Name, c.Name)
		}
	}
	if err := c.finalize(); err != nil {
		return err
	}
	r.classes[c.Name] = c
	r.order = append(r.order, c.Name)
	return nil
}

// MustRegister is Register that panics on error; for static schema setup.
func (r *Registry) MustRegister(c *Class) *Class {
	if err := r.Register(c); err != nil {
		panic(err)
	}
	return c
}

// Lookup returns the class with the given name, or nil.
func (r *Registry) Lookup(name string) *Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.classes[name]
}

// MustClass is Lookup that panics when the class is missing.
func (r *Registry) MustClass(name string) *Class {
	c := r.Lookup(name)
	if c == nil {
		panic(fmt.Sprintf("schema: unknown class %q", name))
	}
	return c
}

// Classes returns all registered classes in registration order.
func (r *Registry) Classes() []*Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Class, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.classes[name])
	}
	return out
}

// Names returns all class names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// Len returns the number of registered classes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.classes)
}

// Subclasses returns every registered class that is the given class or a
// transitive subclass of it (used to expand class-level event
// subscriptions down the hierarchy).
func (r *Registry) Subclasses(of *Class) []*Class {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Class
	for _, name := range r.order {
		c := r.classes[name]
		if c.IsSubclassOf(of) {
			out = append(out, c)
		}
	}
	return out
}

// Replace swaps in a new definition for an already-registered class name,
// finalizing the replacement. It refuses when other registered classes
// inherit from the old definition (they would hold stale metaobjects); the
// caller migrates instances. It returns the old class so the caller can
// undo.
func (r *Registry) Replace(c *Class) (*Class, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.classes[c.Name]
	if !ok {
		return nil, fmt.Errorf("schema: class %s is not registered", c.Name)
	}
	for _, other := range r.classes {
		if other == old {
			continue
		}
		if other.IsSubclassOf(old) {
			return nil, fmt.Errorf("schema: cannot evolve %s: class %s inherits from it (evolve leaves first)",
				c.Name, other.Name)
		}
	}
	for _, b := range c.Bases {
		if got, okB := r.classes[b.Name]; !okB || got != b {
			return nil, fmt.Errorf("schema: base %s of %s is not registered in this registry", b.Name, c.Name)
		}
		if b == old {
			return nil, fmt.Errorf("schema: class %s cannot extend the definition it replaces", c.Name)
		}
	}
	if err := c.finalize(); err != nil {
		return nil, err
	}
	r.classes[c.Name] = c
	return old, nil
}

// restore swaps a class back (undo support for Replace).
func (r *Registry) Restore(old *Class) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes[old.Name] = old
}
