package schema

import (
	"fmt"
	"strings"
)

// linearize computes the C3 method-resolution order for a class:
//
//	L(C) = C + merge(L(B1), ..., L(Bn), [B1 ... Bn])
//
// C3 is the linearization used by modern multiple-inheritance systems
// (Dylan, Python); it preserves local precedence order and monotonicity,
// which gives rule and method inheritance deterministic, intuitive
// semantics. The paper (§1, difference 3) calls out "the principle of
// inheritance (both single and multiple) and its effect on rule
// incorporation" as one of the design forces; C3 makes AllRuleDecls and
// MethodNamed well-defined under diamonds.
func linearize(c *Class) ([]*Class, error) {
	if len(c.Bases) == 0 {
		return []*Class{c}, nil
	}
	seqs := make([][]*Class, 0, len(c.Bases)+1)
	for _, b := range c.Bases {
		if b == c {
			return nil, fmt.Errorf("schema: class %s inherits from itself", c.Name)
		}
		if b.mro == nil {
			return nil, fmt.Errorf("schema: base %s of %s has no linearization", b.Name, c.Name)
		}
		seqs = append(seqs, append([]*Class(nil), b.mro...))
	}
	seqs = append(seqs, append([]*Class(nil), c.Bases...))

	out := []*Class{c}
	for {
		// Drop exhausted sequences.
		live := seqs[:0]
		for _, s := range seqs {
			if len(s) > 0 {
				live = append(live, s)
			}
		}
		seqs = live
		if len(seqs) == 0 {
			return out, nil
		}
		// Find a good head: one that appears in no sequence's tail.
		next := (*Class)(nil)
	candidates:
		for _, s := range seqs {
			head := s[0]
			for _, t := range seqs {
				for _, k := range t[1:] {
					if k == head {
						continue candidates
					}
				}
			}
			next = head
			break
		}
		if next == nil {
			return nil, fmt.Errorf("schema: inconsistent hierarchy for %s: cannot linearize bases [%s]",
				c.Name, baseNames(c))
		}
		out = append(out, next)
		for i, s := range seqs {
			if s[0] == next {
				seqs[i] = s[1:]
			} else {
				// next cannot appear in a tail (checked above), so only
				// heads need removal.
				seqs[i] = s
			}
		}
	}
}

func baseNames(c *Class) string {
	names := make([]string, len(c.Bases))
	for i, b := range c.Bases {
		names[i] = b.Name
	}
	return strings.Join(names, ", ")
}
