// Package schema implements the runtime meta-object protocol of the
// database: classes with attributes, methods, visibility, single and
// multiple inheritance (C3 linearization), and — the paper's central
// addition — the per-method *event interface* that turns a conventional
// class into a reactive class:
//
//	Reactive class definition =
//	    Traditional class definition + Event interface specification  (§3.1)
//
// Go has no implementation inheritance, so instead of mapping the paper's
// C++ classes onto Go structs (which would lose virtual dispatch,
// protected/private visibility, and per-method event annotations — exactly
// the features the paper's design hinges on) classes are first-class runtime
// values. Every message send is dispatched through the class graph, which is
// also where the Sentinel preprocessor hooked event generation in the
// original C++ implementation.
package schema

import "fmt"

// Visibility is the access level of an attribute or method, mirroring the
// C++ feature distinctions the paper calls out in §1 ("the distinctions
// between features supported (e.g., private, protected, and public in
// C++) need to be accounted for").
type Visibility uint8

const (
	// Public members are accessible from any code.
	Public Visibility = iota
	// Protected members are accessible from methods of the defining class
	// and its subclasses.
	Protected
	// Private members are accessible only from methods of the defining
	// class itself.
	Private
)

// String returns "public", "protected", or "private".
func (v Visibility) String() string {
	switch v {
	case Public:
		return "public"
	case Protected:
		return "protected"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("visibility(%d)", uint8(v))
	}
}

// EventGen specifies which primitive events a method generates when invoked
// — the event-interface annotation (§3.1). A method not mentioned in the
// event interface has GenNone and its invocation "does not cause any rule
// evaluation" (Fig. 8).
type EventGen uint8

const (
	// GenNone: the method generates no events.
	GenNone EventGen = iota
	// GenBegin: a begin-of-method (bom) event is raised before the body runs.
	GenBegin
	// GenEnd: an end-of-method (eom) event is raised after the body returns.
	GenEnd
	// GenBoth: both bom and eom events are raised (the paper's
	// "event begin && end" declaration, Fig. 8).
	GenBoth
)

// Begin reports whether a bom event is generated.
func (g EventGen) Begin() bool { return g == GenBegin || g == GenBoth }

// End reports whether an eom event is generated.
func (g EventGen) End() bool { return g == GenEnd || g == GenBoth }

// String renders the declaration keyword used in SentinelQL.
func (g EventGen) String() string {
	switch g {
	case GenNone:
		return "none"
	case GenBegin:
		return "begin"
	case GenEnd:
		return "end"
	case GenBoth:
		return "begin && end"
	default:
		return fmt.Sprintf("eventgen(%d)", uint8(g))
	}
}

// Classification is the paper's three-way object taxonomy (§3.2).
type Classification uint8

const (
	// PassiveClass instances perform operations but generate no events and
	// cannot be monitored; "no overhead is incurred in the definition and
	// use of such objects".
	PassiveClass Classification = iota
	// ReactiveClass instances generate events for methods declared in the
	// event interface and propagate them to subscribed consumers.
	ReactiveClass
	// NotifiableClass instances consume events propagated by reactive
	// objects (rules and composite events are notifiable).
	NotifiableClass
	// ReactiveNotifiableClass instances are both producers and consumers
	// (e.g. the Rule class itself, enabling rules over rules).
	ReactiveNotifiableClass
)

// Reactive reports whether instances generate events.
func (c Classification) Reactive() bool {
	return c == ReactiveClass || c == ReactiveNotifiableClass
}

// Notifiable reports whether instances consume events.
func (c Classification) Notifiable() bool {
	return c == NotifiableClass || c == ReactiveNotifiableClass
}

// String returns the taxonomy name.
func (c Classification) String() string {
	switch c {
	case PassiveClass:
		return "passive"
	case ReactiveClass:
		return "reactive"
	case NotifiableClass:
		return "notifiable"
	case ReactiveNotifiableClass:
		return "reactive+notifiable"
	default:
		return fmt.Sprintf("classification(%d)", uint8(c))
	}
}
