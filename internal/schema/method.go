package schema

import (
	"fmt"
	"strings"

	"sentinel/internal/oid"
	"sentinel/internal/value"
)

// Param is a named, typed method parameter.
type Param struct {
	Name string
	Type *value.Type
}

// CallContext is the execution environment handed to a method body. It is
// implemented by the core runtime; defining it here (as an interface) keeps
// the meta-object layer free of dependencies on transactions, storage and
// the event system while letting method bodies reach all of them.
type CallContext interface {
	// Self returns the OID of the receiver object.
	Self() oid.OID
	// SelfClass returns the dynamic class of the receiver.
	SelfClass() *Class
	// Arg returns the i'th actual parameter (value.Nil if out of range).
	Arg(i int) value.Value
	// NArgs returns the number of actual parameters.
	NArgs() int

	// Get reads an attribute of the receiver (visibility: as the defining
	// class, i.e. unchecked — the body belongs to the class).
	Get(attr string) (value.Value, error)
	// Set writes an attribute of the receiver.
	Set(attr string, v value.Value) error
	// GetOf reads an attribute of another object, subject to visibility
	// checks against the calling class.
	GetOf(obj oid.OID, attr string) (value.Value, error)
	// SetOf writes an attribute of another object, subject to visibility.
	SetOf(obj oid.OID, attr string, v value.Value) error
	// Send invokes a method on another object (or the receiver) within the
	// same transaction, with this method's class as the caller for
	// visibility purposes. Event generation applies as usual.
	Send(obj oid.OID, method string, args ...value.Value) (value.Value, error)
	// New creates a new object of the named class in the current
	// transaction and returns its OID.
	New(class string, inits map[string]value.Value) (oid.OID, error)
	// Raise explicitly signals a named application event from within the
	// method body (paper §3.1 footnote: "the class designer can also
	// explicitly generate other primitive events, within the body of the
	// method").
	Raise(eventName string, params ...value.Value) error
	// Abort returns an error that, when propagated out of the method,
	// aborts the enclosing transaction (the action of Fig. 9's Marriage
	// rule). The method should `return value.Nil, ctx.Abort(reason)`.
	Abort(reason string) error
}

// Body is the executable implementation of a method.
type Body func(ctx CallContext) (value.Value, error)

// Method is a runtime method definition.
type Method struct {
	Name       string
	Params     []Param
	Returns    *value.Type // nil for void
	Visibility Visibility
	// EventGen is this method's entry in the class's event interface.
	EventGen EventGen
	// Body executes the method. A nil Body makes the method abstract:
	// subclasses must override it before instances can call it.
	Body Body

	owner *Class // set at finalize time

	// paramNames memoizes the parameter-name slice occurrences carry, so
	// the event hot path never rebuilds it per send. Set at finalize time;
	// nil when the method has no parameters.
	paramNames []string
}

// Owner returns the class that defines this method (after finalization).
func (m *Method) Owner() *Class { return m.owner }

// ParamNames returns the parameter names in declaration order (nil for a
// niladic method). After class finalization the slice is memoized and must
// not be mutated by callers; before finalization a fresh slice is built.
func (m *Method) ParamNames() []string {
	if m.paramNames != nil || len(m.Params) == 0 {
		return m.paramNames
	}
	return m.buildParamNames()
}

func (m *Method) buildParamNames() []string {
	out := make([]string, len(m.Params))
	for i, p := range m.Params {
		out[i] = p.Name
	}
	return out
}

// memoizeParamNames fixes the parameter-name slice; called at class
// finalization (idempotent — methods are shared along the MRO).
func (m *Method) memoizeParamNames() {
	if m.paramNames == nil && len(m.Params) > 0 {
		m.paramNames = m.buildParamNames()
	}
}

// Signature renders the method as "Class::Name(type name, ...)"; used in
// event signatures and error messages.
func (m *Method) Signature() string {
	var b strings.Builder
	if m.owner != nil {
		b.WriteString(m.owner.Name)
		b.WriteString("::")
	}
	b.WriteString(m.Name)
	b.WriteByte('(')
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Type.String())
		b.WriteByte(' ')
		b.WriteString(p.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// CheckArgs verifies arity and argument kinds against the parameter list and
// returns the arguments with numeric widening applied.
func (m *Method) CheckArgs(args []value.Value) ([]value.Value, error) {
	if len(args) != len(m.Params) {
		return nil, fmt.Errorf("schema: %s expects %d argument(s), got %d",
			m.Signature(), len(m.Params), len(args))
	}
	out := args
	for i, p := range m.Params {
		if !p.Type.Accepts(args[i].Kind()) {
			return nil, fmt.Errorf("schema: %s argument %d (%s): want %s, got %s",
				m.Signature(), i, p.Name, p.Type, args[i].Kind())
		}
		w := p.Type.Widen(args[i])
		if !w.Equal(args[i]) || w.Kind() != args[i].Kind() {
			if out == nil || &out[0] == &args[0] {
				out = append([]value.Value(nil), args...)
			}
			out[i] = w
		}
	}
	return out, nil
}

// Attribute is a runtime attribute (data member) definition.
type Attribute struct {
	Name       string
	Type       *value.Type
	Visibility Visibility
	// Default initializes the attribute on object creation; value.Nil means
	// the type's zero value.
	Default value.Value

	owner *Class
	slot  int // index into the instance field array, set at finalize time
}

// Owner returns the class that defines this attribute (after finalization).
func (a *Attribute) Owner() *Class { return a.owner }

// Slot returns the attribute's field index within instances.
func (a *Attribute) Slot() int { return a.slot }

// InitialValue returns the value a fresh instance stores in this slot.
func (a *Attribute) InitialValue() value.Value {
	if a.Default.IsNil() && a.Type != nil && a.Type.Kind() != value.KindRef {
		return a.Type.Zero()
	}
	return a.Type.Widen(a.Default)
}
