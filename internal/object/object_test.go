package object

import (
	"strings"
	"testing"

	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

func testRegistry(t *testing.T) (*schema.Registry, *schema.Class) {
	t.Helper()
	reg := schema.NewRegistry()
	c := schema.NewClass("Emp")
	c.Persistent = true
	c.Attr("name", value.TypeString)
	c.AddAttribute(&schema.Attribute{Name: "salary", Type: value.TypeFloat, Visibility: schema.Private, Default: value.Float(100)})
	c.AddAttribute(&schema.Attribute{Name: "boss", Type: value.TypeRef("Emp"), Visibility: schema.Public})
	reg.MustRegister(c)
	return reg, c
}

func TestNewDefaults(t *testing.T) {
	_, c := testRegistry(t)
	o, err := New(1, c)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Get("name"); !v.Equal(value.Str("")) {
		t.Errorf("name default = %v", v)
	}
	if v, _ := o.Get("salary"); !v.Equal(value.Float(100)) {
		t.Errorf("salary default = %v", v)
	}
	if v, _ := o.Get("boss"); !v.IsNil() {
		t.Errorf("boss default = %v", v)
	}
	if o.ID() != 1 || o.Class() != c {
		t.Error("identity/class wrong")
	}
}

func TestNewAbstractFails(t *testing.T) {
	reg := schema.NewRegistry()
	a := schema.NewClass("Abs")
	a.Abstract = true
	reg.MustRegister(a)
	if _, err := New(1, a); err == nil {
		t.Fatal("instantiating an abstract class should fail")
	}
	unfinal := schema.NewClass("Raw")
	if _, err := New(2, unfinal); err == nil {
		t.Fatal("instantiating an unfinalized class should fail")
	}
}

func TestGetSetTypeChecked(t *testing.T) {
	_, c := testRegistry(t)
	o, _ := New(1, c)
	if err := o.Set("salary", value.Int(200)); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Get("salary"); !v.Equal(value.Float(200)) || v.Kind() != value.KindFloat {
		t.Errorf("widened set = %v", v)
	}
	if err := o.Set("salary", value.Str("lots")); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := o.Set("nope", value.Int(1)); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := o.Get("nope"); err == nil {
		t.Error("unknown attribute read accepted")
	}
}

func TestCopyRestoreFields(t *testing.T) {
	_, c := testRegistry(t)
	o, _ := New(1, c)
	o.Set("name", value.Str("before"))
	snap := o.CopyFields()
	o.Set("name", value.Str("after"))
	o.Set("salary", value.Float(999))
	o.RestoreFields(snap)
	if v, _ := o.Get("name"); !v.Equal(value.Str("before")) {
		t.Errorf("restore failed: %v", v)
	}
	if v, _ := o.Get("salary"); !v.Equal(value.Float(100)) {
		t.Errorf("restore failed: %v", v)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	reg, c := testRegistry(t)
	o, _ := New(7, c)
	o.Set("name", value.Str("Fred"))
	o.Set("salary", value.Float(1234.5))
	o.Set("boss", value.Ref(oid.OID(3)))

	buf := o.Encode(nil)
	got, err := Decode(7, buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"name", "salary", "boss"} {
		want, _ := o.Get(attr)
		have, _ := got.Get(attr)
		if !have.Equal(want) {
			t.Errorf("%s: %v != %v", attr, have, want)
		}
	}
}

func TestDecodeUnknownClass(t *testing.T) {
	reg, c := testRegistry(t)
	o, _ := New(1, c)
	buf := o.Encode(nil)
	empty := schema.NewRegistry()
	if _, err := Decode(1, buf, empty); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("expected unknown-class error, got %v", err)
	}
	_ = reg
}

func TestDecodeSchemaEvolution(t *testing.T) {
	// Encode with a 2-attribute class, decode with a 3-attribute version:
	// the extra slot takes its default (zero-fill evolution).
	regOld := schema.NewRegistry()
	old := schema.NewClass("Evo")
	old.Attr("a", value.TypeInt)
	regOld.MustRegister(old)
	o, _ := New(1, old)
	o.Set("a", value.Int(42))
	buf := o.Encode(nil)

	regNew := schema.NewRegistry()
	neu := schema.NewClass("Evo")
	neu.Attr("a", value.TypeInt)
	neu.Attr("b", value.TypeString)
	regNew.MustRegister(neu)
	got, err := Decode(1, buf, regNew)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Get("a"); !v.Equal(value.Int(42)) {
		t.Errorf("a = %v", v)
	}
	if v, _ := got.Get("b"); !v.Equal(value.Str("")) {
		t.Errorf("b = %v (should zero-fill)", v)
	}

	// The reverse: decode a 2-field image into a 1-field class (truncate).
	o2, _ := New(2, neu)
	o2.Set("a", value.Int(7))
	o2.Set("b", value.Str("x"))
	buf2 := o2.Encode(nil)
	got2, err := Decode(2, buf2, regOld)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got2.Get("a"); !v.Equal(value.Int(7)) {
		t.Errorf("truncated decode a = %v", v)
	}
}

func TestPeekClass(t *testing.T) {
	_, c := testRegistry(t)
	o, _ := New(1, c)
	cls, err := PeekClass(o.Encode(nil))
	if err != nil || cls != "Emp" {
		t.Fatalf("PeekClass = %q, %v", cls, err)
	}
	if _, err := PeekClass([]byte{9, 9}); err == nil {
		t.Error("malformed image accepted")
	}
}

func TestVersioning(t *testing.T) {
	_, c := testRegistry(t)
	o, _ := New(1, c)
	if o.Version() != 0 {
		t.Fatal("fresh object version != 0")
	}
	o.BumpVersion()
	o.BumpVersion()
	if o.Version() != 2 {
		t.Fatalf("version = %d", o.Version())
	}
}

func TestStringShowsPublicOnly(t *testing.T) {
	_, c := testRegistry(t)
	o, _ := New(1, c)
	o.Set("name", value.Str("Fred"))
	s := o.String()
	if !strings.Contains(s, "Fred") || !strings.Contains(s, "Emp") {
		t.Errorf("String = %q", s)
	}
	if strings.Contains(s, "salary") {
		t.Errorf("String leaks private attribute: %q", s)
	}
}
