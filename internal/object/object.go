// Package object implements instances of runtime classes: an OID, a class
// pointer, and one value slot per attribute in the class layout.
//
// Objects here are the in-memory representation; the storage layer persists
// them via Encode/Decode and the transaction layer snapshots them via
// CopyFields for before-image rollback.
package object

import (
	"fmt"

	"sentinel/internal/oid"
	"sentinel/internal/schema"
	"sentinel/internal/value"
)

// Object is an instance of a runtime class.
type Object struct {
	id     oid.OID
	class  *schema.Class
	fields []value.Value
	// version counts committed writes; used by the buffer/catalog layers to
	// cheaply detect staleness.
	version uint64
}

// New creates an instance of class c with all attributes set to their
// declared defaults. It returns an error for abstract or unfinalized
// classes.
func New(id oid.OID, c *schema.Class) (*Object, error) {
	if !c.Finalized() {
		return nil, fmt.Errorf("object: class %s is not finalized", c.Name)
	}
	if c.Abstract {
		return nil, fmt.Errorf("object: class %s is abstract", c.Name)
	}
	fields := make([]value.Value, c.NumSlots())
	for _, a := range c.Layout() {
		fields[a.Slot()] = a.InitialValue()
	}
	return &Object{id: id, class: c, fields: fields}, nil
}

// ID returns the object's OID.
func (o *Object) ID() oid.OID { return o.id }

// Class returns the object's dynamic class.
func (o *Object) Class() *schema.Class { return o.class }

// Version returns the commit version counter.
func (o *Object) Version() uint64 { return o.version }

// BumpVersion increments the commit version; called by the transaction
// layer on commit of a write.
func (o *Object) BumpVersion() { o.version++ }

// Get returns the value of the named attribute. The caller is responsible
// for visibility checks (the core runtime performs them with knowledge of
// the calling class).
func (o *Object) Get(attr string) (value.Value, error) {
	a := o.class.AttributeNamed(attr)
	if a == nil {
		return value.Nil, fmt.Errorf("object: class %s has no attribute %q", o.class.Name, attr)
	}
	return o.fields[a.Slot()], nil
}

// Set assigns the named attribute after a kind check against its declared
// type (ints widen into float slots).
func (o *Object) Set(attr string, v value.Value) error {
	a := o.class.AttributeNamed(attr)
	if a == nil {
		return fmt.Errorf("object: class %s has no attribute %q", o.class.Name, attr)
	}
	if !a.Type.Accepts(v.Kind()) {
		return fmt.Errorf("object: %s.%s: want %s, got %s", o.class.Name, attr, a.Type, v.Kind())
	}
	o.fields[a.Slot()] = a.Type.Widen(v)
	return nil
}

// GetSlot reads a field by slot index (no checks); for the interpreter's
// fast path.
func (o *Object) GetSlot(i int) value.Value { return o.fields[i] }

// SetSlot writes a field by slot index (no checks).
func (o *Object) SetSlot(i int, v value.Value) { o.fields[i] = v }

// CopyFields returns a snapshot of the field array, used as a transaction
// before-image.
func (o *Object) CopyFields() []value.Value {
	return append([]value.Value(nil), o.fields...)
}

// RestoreFields overwrites the fields from a snapshot taken with
// CopyFields; used on transaction abort.
func (o *Object) RestoreFields(snap []value.Value) {
	copy(o.fields, snap)
}

// Clone returns a private copy of the object: same identity, class and
// version, freshly copied fields. The MVCC snapshot-read path clones the
// committed resident image so readers never share a field array with
// in-place writers.
func (o *Object) Clone() *Object {
	return &Object{id: o.id, class: o.class, fields: o.CopyFields(), version: o.version}
}

// Materialize builds an object directly from a class and a field snapshot —
// the MVCC read path reconstructing an archived version from a directory
// version chain. The fields are copied; no default initialization or
// abstract-class checks run, because the snapshot came from a previously
// valid committed image.
func Materialize(id oid.OID, c *schema.Class, fields []value.Value) *Object {
	return &Object{id: id, class: c, fields: append([]value.Value(nil), fields...)}
}

// String renders the object with its class and public attributes.
func (o *Object) String() string {
	s := fmt.Sprintf("%s(%s){", o.class.Name, o.id)
	first := true
	for _, a := range o.class.Layout() {
		if a.Visibility != schema.Public {
			continue
		}
		if !first {
			s += ", "
		}
		first = false
		s += a.Name + ": " + o.fields[a.Slot()].String()
	}
	return s + "}"
}

// Encode serializes the object's state (class name + field values) for the
// storage layer.
func (o *Object) Encode(buf []byte) []byte {
	buf = value.AppendValue(buf, value.Str(o.class.Name))
	buf = value.AppendValue(buf, value.Int(int64(len(o.fields))))
	for _, f := range o.fields {
		buf = value.AppendValue(buf, f)
	}
	return buf
}

// Decode materializes an object from bytes produced by Encode, resolving
// the class through the registry. A schema mismatch (fewer/more persisted
// fields than the current layout) is tolerated by truncating or
// zero-filling, which gives primitive schema evolution.
func Decode(id oid.OID, buf []byte, reg *schema.Registry) (*Object, error) {
	clsV, buf, err := value.DecodeValue(buf)
	if err != nil {
		return nil, fmt.Errorf("object: decode class name: %w", err)
	}
	clsName, ok := clsV.AsString()
	if !ok {
		return nil, fmt.Errorf("object: decode: malformed header")
	}
	c := reg.Lookup(clsName)
	if c == nil {
		return nil, fmt.Errorf("object: decode: unknown class %q", clsName)
	}
	nV, buf, err := value.DecodeValue(buf)
	if err != nil {
		return nil, fmt.Errorf("object: decode field count: %w", err)
	}
	n, _ := nV.AsInt()
	o, err := New(id, c)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		var f value.Value
		f, buf, err = value.DecodeValue(buf)
		if err != nil {
			return nil, fmt.Errorf("object: decode field %d: %w", i, err)
		}
		if int(i) < len(o.fields) {
			o.fields[int(i)] = f
		}
	}
	return o, nil
}

// PeekClass reads just the class name from an encoded image, letting the
// loader order decoding by class without a registry.
func PeekClass(buf []byte) (string, error) {
	v, _, err := value.DecodeValue(buf)
	if err != nil {
		return "", fmt.Errorf("object: peek class: %w", err)
	}
	s, ok := v.AsString()
	if !ok {
		return "", fmt.Errorf("object: peek class: malformed header")
	}
	return s, nil
}
