package repl

import (
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/wal"
	"sentinel/internal/wire"
)

// BatchToWire converts a core batch to its wire form. The wire encoder
// copies record Data out of the pooled commit scratch, so the conversion
// itself may alias freely.
func BatchToWire(b core.ReplBatch) wire.ReplBatch {
	w := wire.ReplBatch{LSN: b.LSN}
	if len(b.Recs) > 0 {
		w.Recs = make([]wire.ReplRec, len(b.Recs))
		for i, r := range b.Recs {
			w.Recs[i] = wire.ReplRec{Type: uint8(r.Type), Tx: r.Tx, OID: r.OID, Data: r.Data}
		}
	}
	if len(b.Occs) > 0 {
		w.Occs = make([]wire.Event, len(b.Occs))
		for i, o := range b.Occs {
			w.Occs[i] = wire.Event{
				Source:     o.Source,
				Class:      o.Class,
				Method:     o.Method,
				Moment:     uint8(o.When),
				Seq:        o.Seq,
				Args:       o.Args,
				ParamNames: o.ParamNames,
			}
		}
	}
	return w
}

// BatchFromWire converts a decoded wire batch back to the core form the
// replica's apply path consumes. Tx on the occurrence is the primary's
// transaction id carried in the records; coupling modes never run on a
// replica (rules fire on the primary only), so it is informational.
func BatchFromWire(w wire.ReplBatch) core.ReplBatch {
	b := core.ReplBatch{LSN: w.LSN}
	if len(w.Recs) > 0 {
		b.Recs = make([]wal.Record, len(w.Recs))
		for i, r := range w.Recs {
			b.Recs[i] = wal.Record{Type: wal.RecordType(r.Type), Tx: r.Tx, OID: r.OID, Data: r.Data}
		}
	}
	if len(w.Occs) > 0 {
		b.Occs = make([]event.Occurrence, len(w.Occs))
		for i, e := range w.Occs {
			b.Occs[i] = event.Occurrence{
				Source:     e.Source,
				Class:      e.Class,
				Method:     e.Method,
				When:       event.Moment(e.Moment),
				Seq:        e.Seq,
				Args:       e.Args,
				ParamNames: e.ParamNames,
			}
		}
	}
	return b
}
