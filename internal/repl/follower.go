package repl

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/wire"
)

// FollowerOptions configure a replica runtime.
type FollowerOptions struct {
	// PrimaryAddr is the primary server's listen address.
	PrimaryAddr string
	// Core configures the local replica database. Dir is required;
	// Replica is forced true.
	Core core.Options
	// MaxBackoff caps the dial-retry backoff (default 2s).
	MaxBackoff time.Duration
}

// Follower is a replica runtime: it opens the database once in replica
// mode, then maintains a connection to the primary, installing base state
// when told to and applying streamed batches. DB serves local reads (wrap
// it in a server.Server for network reads and push fan-out); the follower
// goroutines own all writes into it.
type Follower struct {
	// DB is the replica database. Open for the Follower's whole life —
	// resyncs install base state live through the MVCC machinery, so
	// readers and the serving layer never see the pointer change.
	DB *core.Database

	opts   FollowerOptions
	cancel context.CancelFunc
	wg     sync.WaitGroup

	connected  atomic.Int32
	primaryLSN atomic.Uint64

	cliMu sync.Mutex
	cli   *client.Client
}

// StartFollower opens the replica database and starts the streaming loop.
// Close stops the loop and closes the database.
func StartFollower(opts FollowerOptions) (*Follower, error) {
	opts.Core.Replica = true
	db, err := core.Open(opts.Core)
	if err != nil {
		return nil, err
	}
	f := &Follower{DB: db, opts: opts}
	db.SetReplInfo(func() (int, uint64) {
		return int(f.connected.Load()), f.primaryLSN.Load()
	})
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.wg.Add(1)
	go f.run(ctx)
	return f, nil
}

// Connected reports whether a primary connection is live and past its
// handshake.
func (f *Follower) Connected() bool { return f.connected.Load() != 0 }

// PrimaryLSN returns the highest primary LSN observed (shipped-at-hello or
// streamed), for lag accounting.
func (f *Follower) PrimaryLSN() uint64 { return f.primaryLSN.Load() }

// Close stops the streaming loop and closes the replica database.
func (f *Follower) Close() error {
	f.cancel()
	f.cliMu.Lock()
	if f.cli != nil {
		f.cli.Close()
	}
	f.cliMu.Unlock()
	f.wg.Wait()
	f.DB.SetReplInfo(nil)
	return f.DB.Close()
}

func (f *Follower) setCli(c *client.Client) {
	f.cliMu.Lock()
	f.cli = c
	f.cliMu.Unlock()
}

// run dials, streams until the connection (or the stream's consistency)
// breaks, and redials. Every reconnect re-handshakes from the replica's
// applied LSN, so a broken stream costs retransmission, never correctness.
func (f *Follower) run(ctx context.Context) {
	defer f.wg.Done()
	for ctx.Err() == nil {
		cli, err := client.DialRetry(ctx, f.opts.PrimaryAddr, f.opts.MaxBackoff)
		if err != nil {
			return // ctx cancelled
		}
		f.setCli(cli)
		f.stream(ctx, cli)
		f.connected.Store(0)
		f.setCli(nil)
		cli.Close()
	}
}

// push is one replication frame copied off the client's reader goroutine.
type push struct {
	op      byte
	payload []byte
}

// stream runs one connection's worth of replication: handshake, optional
// base sync, then apply frames until something breaks. Returning (for any
// reason) tears the connection down; run redials.
func (f *Follower) stream(ctx context.Context, cli *client.Client) {
	// The reader goroutine copies each push into applyCh; a full channel
	// blocks the reader, which backpressures the primary through TCP —
	// exactly the per-follower pacing the shipper is built for.
	applyCh := make(chan push, 64)
	cli.OnPush(func(op byte, payload []byte) {
		m := push{op: op, payload: append([]byte(nil), payload...)}
		select {
		case applyCh <- m:
		case <-cli.Done():
		}
	})

	primaryEpoch, shipped, needBase, err := cli.ReplHello(ctx, f.DB.ReplLSN(), f.DB.ReplEpoch())
	if err != nil {
		return
	}
	if shipped > f.primaryLSN.Load() {
		f.primaryLSN.Store(shipped)
	}
	f.connected.Store(1)
	if !needBase {
		// Resuming (or streaming from scratch): our state is already part
		// of this epoch's history — possibly as the shared prefix of the
		// previous epoch, after a promotion — so adopt the new epoch now and
		// checkpoint it durable. The checkpoint is the follower-side fence
		// point: from here this replica's (epoch, LSN) names a position in
		// the new history, and it will ack (and re-handshake) under the new
		// epoch even across its own crashes.
		f.adoptEpoch(primaryEpoch)
	}

	// Acks run on their own goroutine so a slow ack round-trip never stalls
	// the apply loop (and the apply loop never waits on the ack loop — no
	// circular dependency). Latest-wins coalescing: the ack carries the
	// applied LSN read at send time.
	ackCh := make(chan struct{}, 1)
	ackCtx, ackCancel := context.WithCancel(ctx)
	var ackWG sync.WaitGroup
	ackWG.Add(1)
	go func() {
		defer ackWG.Done()
		for {
			select {
			case <-ackCh:
				if cli.ReplAck(ackCtx, f.DB.ReplLSN(), f.DB.ReplEpoch()) != nil {
					return
				}
			case <-ackCtx.Done():
				return
			}
		}
	}()
	defer func() {
		ackCancel()
		ackWG.Wait()
	}()
	kickAck := func() {
		select {
		case ackCh <- struct{}{}:
		default:
		}
	}

	var base []core.ReplBaseObject
	syncing := needBase
	for {
		select {
		case <-ctx.Done():
			return
		case <-cli.Done():
			return
		case m := <-applyCh:
			switch m.op {
			case wire.OpReplSnap:
				objs, err := wire.DecodeReplSnap(m.payload)
				if err != nil {
					return
				}
				for _, o := range objs {
					base = append(base, core.ReplBaseObject{ID: o.ID, Img: o.Img})
				}
			case wire.OpReplSnapEnd:
				// The snap-end meta blob (OID high-water, clock) is not
				// installed: a replica never allocates OIDs or stamps
				// sequence numbers, and ApplyBaseState rebuilds the catalog
				// from the system objects in the images themselves.
				baseLSN, _, err := wire.DecodeReplSnapEnd(m.payload)
				if err != nil {
					return
				}
				// Adopt the epoch before the install: ApplyBaseState ends
				// with a checkpoint, so the new (epoch, LSN) pair persists
				// atomically with the installed state. A failed install
				// leaves the in-memory state torn, so drop to epoch 0 —
				// "history of no verifiable lineage" — which forces the next
				// handshake to re-seed from base state (a fresh install
				// repairs any tear; images are full and idempotent).
				f.DB.SetReplEpoch(primaryEpoch)
				if err := f.DB.ApplyBaseState(baseLSN, base); err != nil {
					f.DB.SetReplEpoch(0)
					return
				}
				base = nil
				syncing = false
				if baseLSN > f.primaryLSN.Load() {
					f.primaryLSN.Store(baseLSN)
				}
				kickAck()
			case wire.OpReplFrames:
				wb, err := wire.DecodeReplBatch(m.payload)
				if err != nil {
					return
				}
				if syncing && wb.LSN != 0 {
					// A data frame racing a base sync is covered by the
					// base state being installed; applying it now would
					// land ahead of the install.
					continue
				}
				b := BatchFromWire(wb)
				if b.LSN > f.primaryLSN.Load() {
					f.primaryLSN.Store(b.LSN)
				}
				if err := f.DB.ApplyReplicated(b); err != nil {
					// Gap or apply failure: tear the stream down and
					// re-handshake from the replica's applied LSN.
					return
				}
				if b.LSN != 0 {
					kickAck()
				}
			}
		}
	}
}

// adoptEpoch moves the replica onto the primary's epoch and checkpoints it
// durable. No-op when already there (the common reconnect); checkpoint
// failure is best-effort — the replica keeps presenting the old epoch and
// resumes through the shared-prefix rule until a later checkpoint lands.
func (f *Follower) adoptEpoch(epoch uint64) {
	if f.DB.ReplEpoch() == epoch {
		return
	}
	f.DB.SetReplEpoch(epoch)
	_ = f.DB.Checkpoint()
}

// Promote turns this follower into a primary: the failover path when the
// old primary is lost (see DESIGN.md §4i).
//
// The sequence: stop the streaming loop (sealing replay at the applied
// LSN — nothing applies after this), close the replica database (the final
// checkpoint persists its exact (epoch, LSN) position), reopen the same
// directory as a writable primary-mode database (the full recovery path
// rebuilds rules, subscriptions and indexes, which the replica apply loop
// deliberately does not maintain live), and start a Primary over it —
// which bumps the epoch past the old primary's and records the applied LSN
// as the seal, so surviving followers at or below it re-handshake without a
// base copy while the deposed primary, coming back with unacked commits
// past the seal, is re-seeded.
//
// mutate, when non-nil, adjusts the reopened database's options (e.g.
// enabling SyncReplicas/SyncOnCommit — replica-mode options cannot carry
// them). The Follower is spent after Promote: do not reuse it, and do not
// call Close (the returned database and Primary are the live handles).
func (f *Follower) Promote(popts PrimaryOptions, mutate func(*core.Options)) (*core.Database, *Primary, error) {
	// Seal: stop the dial/stream loop and wait the apply goroutines out.
	// After wg.Wait returns nothing can call ApplyReplicated again.
	f.cancel()
	f.cliMu.Lock()
	if f.cli != nil {
		f.cli.Close()
	}
	f.cliMu.Unlock()
	f.wg.Wait()
	f.DB.SetReplInfo(nil)
	if err := f.DB.Close(); err != nil {
		return nil, nil, err
	}

	opts := f.opts.Core
	opts.Replica = false
	if mutate != nil {
		mutate(&opts)
	}
	db, err := core.Open(opts)
	if err != nil {
		return nil, nil, err
	}
	return db, NewPrimary(db, popts), nil
}
