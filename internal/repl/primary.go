// Package repl implements WAL-shipped replication: a Primary hooks the
// database's commit path and streams every committed batch to attached
// followers over the wire protocol's replication opcodes; a Follower dials
// the primary, installs a base state when it has none (or has fallen behind
// the primary's retention ring), replays the stream through the same redo
// path crash recovery uses, and serves snapshot reads and subscription
// fan-out from its own server instance.
//
// The layering runs repl → core/wire/client, with the server package on top
// importing repl: the server hands each replication-aware session to the
// Primary as a FollowerSession, so repl never learns about sockets or frame
// framing on the primary side.
//
// The no-stall contract: the ship hook runs on the committing goroutine with
// the transaction's locks held, so everything it does is encode-and-buffer —
// payloads land in a bounded in-memory ring and per-follower shipper
// goroutines drain the ring at each follower's pace. A wedged follower
// blocks only its own shipper; when it falls behind the ring's floor it is
// re-seeded from base state instead of stalling the primary.
package repl

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"

	"sentinel/internal/core"
	"sentinel/internal/wire"
)

// FollowerSession is what the Primary needs from an attached follower's
// server session: an identity for ack/teardown bookkeeping and two enqueue
// flavours. Send blocks while the session's out-queue is full (the shipper
// goroutine can afford to wait; cancel aborts the wait when the follower is
// being detached) and reports false once the session is gone. TrySend is
// wait-free — used for event-only batches, which carry nothing durable and
// may be dropped rather than buffered.
type FollowerSession interface {
	SessionID() uint64
	Send(op byte, payload []byte, cancel <-chan struct{}) bool
	TrySend(op byte, payload []byte) bool
}

// PrimaryOptions tune the shipping side.
type PrimaryOptions struct {
	// RingBytes bounds the encoded-payload retention ring. A follower whose
	// resume point has been trimmed past is re-seeded from base state.
	// Default 4 MiB.
	RingBytes int
	// SnapChunkBytes bounds one OpReplSnap chunk during base sync.
	// Default 256 KiB.
	SnapChunkBytes int
	// Epoch overrides the random stream epoch (tests only). 0 means random.
	Epoch uint64
}

// Primary attaches to a database's commit path and fans committed batches
// out to followers.
type Primary struct {
	db   *core.Database
	opts PrimaryOptions
	// epoch identifies this shipping history. A fresh Primary gets a fresh
	// epoch; a follower presenting a different epoch's position is re-seeded
	// from base state rather than resumed, because LSNs from another epoch
	// number a history this primary cannot verify it shares.
	epoch uint64

	mu        sync.Mutex
	shipped   uint64 // highest LSN handed to ship (or current at install)
	ring      []ringEntry
	ringBytes int
	followers map[uint64]*followerState
	closed    bool
	wg        sync.WaitGroup
}

// ringEntry is one retained batch: its LSN and the fully encoded
// OpReplFrames payload (shared read-only by every shipper).
type ringEntry struct {
	lsn     uint64
	payload []byte
}

// followerState is the primary-side record of one attached follower.
type followerState struct {
	p        *Primary
	sess     FollowerSession
	next     uint64 // next LSN to send
	needBase bool
	started  bool // shipper goroutine launched (guarded by p.mu)
	applied  atomic.Uint64
	notify   chan struct{} // capacity 1: new ring entries
	stop     chan struct{}
	stopOnce sync.Once
}

// NewPrimary installs the shipping hook on db and returns the Primary.
// Close detaches it.
func NewPrimary(db *core.Database, opts PrimaryOptions) *Primary {
	if opts.RingBytes <= 0 {
		opts.RingBytes = 4 << 20
	}
	if opts.SnapChunkBytes <= 0 {
		opts.SnapChunkBytes = 256 << 10
	}
	epoch := opts.Epoch
	for epoch == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is unrecoverable on any supported
			// platform; a constant epoch would still replicate, just
			// without cross-restart confusion detection.
			epoch = 1
			break
		}
		epoch = binary.LittleEndian.Uint64(b[:])
	}
	p := &Primary{
		db:        db,
		opts:      opts,
		epoch:     epoch,
		followers: make(map[uint64]*followerState),
	}
	lsn := db.SetReplShip(p.ship)
	p.mu.Lock()
	if lsn > p.shipped {
		p.shipped = lsn
	}
	p.mu.Unlock()
	db.SetReplInfo(p.info)
	return p
}

// Epoch returns the stream epoch (tests and diagnostics).
func (p *Primary) Epoch() uint64 { return p.epoch }

// ship is the hook core calls on every committed batch, on the committing
// goroutine under replMu. It encodes the batch (the record Data aliases
// pooled scratch, so encoding doubles as the copy), buffers it in the ring,
// and nudges the shippers. Nothing here blocks.
func (p *Primary) ship(b core.ReplBatch) {
	payload := wire.AppendReplBatch(nil, BatchToWire(b))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if b.LSN == 0 {
		// Event-only batch: nothing durable, nothing to resume — wait-free
		// push to whoever is attached and keeping up, drop for the rest.
		// Skipping not-yet-started followers keeps the welcome response
		// ahead of any push on their session queue.
		for _, f := range p.followers {
			if f.started {
				f.sess.TrySend(wire.OpReplFrames, payload)
			}
		}
		return
	}
	if b.LSN > p.shipped {
		p.shipped = b.LSN
	}
	p.ring = append(p.ring, ringEntry{lsn: b.LSN, payload: payload})
	p.ringBytes += len(payload)
	for p.ringBytes > p.opts.RingBytes && len(p.ring) > 1 {
		p.ringBytes -= len(p.ring[0].payload)
		p.ring = p.ring[1:]
	}
	for _, f := range p.followers {
		select {
		case f.notify <- struct{}{}:
		default:
		}
	}
}

// AddFollower registers a session at its requested resume position. It
// returns the primary's epoch, the current shipped LSN, and whether the
// follower must install base state before streaming (epoch mismatch, a
// position ahead of this primary, or one trimmed past the ring's floor).
// The stream does not flow until StartShipper — the caller enqueues the
// OpReplWelcome response in between, so the handshake always precedes the
// first push on the session's queue.
func (p *Primary) AddFollower(sess FollowerSession, startLSN, epoch uint64) (primaryEpoch, shippedLSN uint64, needBase bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, 0, false, errors.New("repl: primary closed")
	}
	if old := p.followers[sess.SessionID()]; old != nil {
		// A second hello on the same session replaces the first stream.
		old.stopOnce.Do(func() { close(old.stop) })
	}
	// An empty replica (position 0) carries no history that could diverge,
	// so it may stream from scratch whatever its epoch — everything else
	// needs an epoch match to make its LSNs comparable to ours.
	needBase = startLSN > p.shipped || (epoch != p.epoch && startLSN > 0)
	if !needBase && startLSN < p.shipped {
		// Batches (startLSN, shipped] must all still be in the ring;
		// anything older was trimmed (or predates this primary entirely).
		if len(p.ring) == 0 || startLSN+1 < p.ring[0].lsn {
			needBase = true
		}
	}
	f := &followerState{
		p:        p,
		sess:     sess,
		next:     startLSN + 1,
		needBase: needBase,
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	f.applied.Store(startLSN)
	p.followers[sess.SessionID()] = f
	return p.epoch, p.shipped, needBase, nil
}

// StartShipper launches the registered follower's shipper goroutine.
// No-op for an unknown (already removed) or already-started follower.
func (p *Primary) StartShipper(sessionID uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.followers[sessionID]
	if f == nil || f.started {
		return
	}
	f.started = true
	p.wg.Add(1)
	go f.run()
}

// Ack records a follower's applied LSN (lag accounting). Acks arrive in
// order on the session's reader goroutine.
func (p *Primary) Ack(sessionID, appliedLSN uint64) {
	p.mu.Lock()
	f := p.followers[sessionID]
	p.mu.Unlock()
	if f != nil && appliedLSN > f.applied.Load() {
		f.applied.Store(appliedLSN)
	}
}

// RemoveFollower detaches a session's follower (called from session
// teardown). Idempotent.
func (p *Primary) RemoveFollower(sessionID uint64) {
	p.mu.Lock()
	f := p.followers[sessionID]
	delete(p.followers, sessionID)
	p.mu.Unlock()
	if f != nil {
		f.stopOnce.Do(func() { close(f.stop) })
	}
}

// Followers returns the number of attached followers.
func (p *Primary) Followers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.followers)
}

// info feeds the Replication stats group: attached follower count and the
// minimum applied LSN across them (0 when none are attached).
func (p *Primary) info() (peers int, lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var min uint64
	first := true
	for _, f := range p.followers {
		a := f.applied.Load()
		if first || a < min {
			min = a
			first = false
		}
	}
	if first {
		min = 0
	}
	return len(p.followers), min
}

// Close detaches the hook, stops every shipper, and waits for them.
func (p *Primary) Close() {
	p.db.SetReplShip(nil)
	p.db.SetReplInfo(nil)
	p.mu.Lock()
	p.closed = true
	for id, f := range p.followers {
		delete(p.followers, id)
		f.stopOnce.Do(func() { close(f.stop) })
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// drop removes f's registration (shipper-initiated teardown: the session
// died under a Send, or base sync failed). Session teardown calls
// RemoveFollower too; both are idempotent.
func (f *followerState) drop() {
	f.p.RemoveFollower(f.sess.SessionID())
}

// run is the per-follower shipper: base-sync when needed, then drain the
// ring from f.next, blocking on the session's queue (its own pace) and on
// notify when caught up.
func (f *followerState) run() {
	p := f.p
	defer p.wg.Done()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if f.needBase {
			if !f.baseSync() {
				f.drop()
				return
			}
			f.needBase = false
		}
		p.mu.Lock()
		if len(p.ring) > 0 && f.next < p.ring[0].lsn {
			// Trimmed past our resume point while we slept: re-seed.
			f.needBase = true
			p.mu.Unlock()
			continue
		}
		if len(p.ring) == 0 && f.next <= p.shipped {
			// Batches committed before this primary attached its hook are
			// not in the ring; only base state can cover them.
			f.needBase = true
			p.mu.Unlock()
			continue
		}
		var pend []ringEntry
		for _, e := range p.ring {
			if e.lsn >= f.next {
				pend = append(pend, e)
			}
		}
		p.mu.Unlock()
		if len(pend) == 0 {
			select {
			case <-f.notify:
			case <-f.stop:
				return
			}
			continue
		}
		for _, e := range pend {
			if !f.sess.Send(wire.OpReplFrames, e.payload, f.stop) {
				f.drop()
				return
			}
			f.next = e.lsn + 1
		}
	}
}

// baseSync captures the primary's base state and streams it to the
// follower as chunked OpReplSnap pushes terminated by OpReplSnapEnd.
// Reports false when the session died mid-stream.
func (f *followerState) baseSync() bool {
	st, err := f.p.db.ReplBaseState()
	if err != nil {
		return false
	}
	var (
		chunk []wire.ReplSnapObj
		size  int
	)
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		payload := wire.AppendReplSnap(nil, chunk)
		chunk = chunk[:0]
		size = 0
		return f.sess.Send(wire.OpReplSnap, payload, f.stop)
	}
	for _, o := range st.Objects {
		chunk = append(chunk, wire.ReplSnapObj{ID: o.ID, Img: o.Img})
		size += len(o.Img) + 16
		if size >= f.p.opts.SnapChunkBytes {
			if !flush() {
				return false
			}
		}
	}
	if !flush() {
		return false
	}
	end := wire.AppendReplSnapEnd(nil, st.LSN, st.Meta)
	if !f.sess.Send(wire.OpReplSnapEnd, end, f.stop) {
		return false
	}
	f.next = st.LSN + 1
	return true
}
