// Package repl implements WAL-shipped replication: a Primary hooks the
// database's commit path and streams every committed batch to attached
// followers over the wire protocol's replication opcodes; a Follower dials
// the primary, installs a base state when it has none (or has fallen behind
// the primary's retention ring), replays the stream through the same redo
// path crash recovery uses, and serves snapshot reads and subscription
// fan-out from its own server instance.
//
// The layering runs repl → core/wire/client, with the server package on top
// importing repl: the server hands each replication-aware session to the
// Primary as a FollowerSession, so repl never learns about sockets or frame
// framing on the primary side.
//
// The no-stall contract: the ship hook runs on the committing goroutine with
// the transaction's locks held, so everything it does is encode-and-buffer —
// payloads land in a bounded in-memory ring and per-follower shipper
// goroutines drain the ring at each follower's pace. A wedged follower
// blocks only its own shipper; when it falls behind the ring's floor it is
// re-seeded from base state instead of stalling the primary.
package repl

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sentinel/internal/core"
	"sentinel/internal/wire"
)

// FollowerSession is what the Primary needs from an attached follower's
// server session: an identity for ack/teardown bookkeeping and two enqueue
// flavours. Send blocks while the session's out-queue is full (the shipper
// goroutine can afford to wait; cancel aborts the wait when the follower is
// being detached) and reports false once the session is gone. TrySend is
// wait-free — used for event-only batches, which carry nothing durable and
// may be dropped rather than buffered.
type FollowerSession interface {
	SessionID() uint64
	Send(op byte, payload []byte, cancel <-chan struct{}) bool
	TrySend(op byte, payload []byte) bool
}

// PrimaryOptions tune the shipping side.
type PrimaryOptions struct {
	// RingBytes bounds the encoded-payload retention ring. A follower whose
	// resume point has been trimmed past is re-seeded from base state.
	// Default 4 MiB.
	RingBytes int
	// SnapChunkBytes bounds one OpReplSnap chunk during base sync.
	// Default 256 KiB.
	SnapChunkBytes int
	// Epoch overrides the bumped stream epoch (tests only). 0 means the
	// database's persisted epoch + 1.
	Epoch uint64
}

// Primary attaches to a database's commit path and fans committed batches
// out to followers.
type Primary struct {
	db   *core.Database
	opts PrimaryOptions
	// epoch identifies this shipping history. Epochs are ordered: every
	// NewPrimary over a directory bumps the persisted epoch (and
	// checkpoints it, making the bump the durable fence point), so a
	// restarted or promoted primary is always newer than whatever shipped
	// before it. A follower presenting a higher epoch proves this node was
	// deposed — it fences itself. prevEpoch/sealLSN name the shared prefix:
	// the previous epoch's history up to sealLSN is byte-identical to this
	// epoch's, so its followers at or below the seal may resume instead of
	// re-seeding.
	epoch     uint64
	prevEpoch uint64
	sealLSN   uint64

	mu        sync.Mutex
	shipped   uint64 // highest LSN handed to ship (or current at install)
	ring      []ringEntry
	ringBytes int
	followers map[uint64]*followerState
	waiters   []*quorumWaiter
	fenced    bool
	closed    bool
	wg        sync.WaitGroup
}

// quorumWaiter is one commit blocked in waitQuorum until k followers have
// acked lsn. The channel is buffered and receives exactly once: only the
// code path that removes the waiter from p.waiters (under p.mu) sends, and
// the timeout path removes without sending.
type quorumWaiter struct {
	lsn uint64
	k   int
	ch  chan error
}

// ringEntry is one retained batch: its LSN and the fully encoded
// OpReplFrames payload (shared read-only by every shipper).
type ringEntry struct {
	lsn     uint64
	payload []byte
}

// followerState is the primary-side record of one attached follower.
type followerState struct {
	p        *Primary
	sess     FollowerSession
	next     uint64 // next LSN to send
	needBase bool
	started  bool // shipper goroutine launched (guarded by p.mu)
	applied  atomic.Uint64
	notify   chan struct{} // capacity 1: new ring entries
	stop     chan struct{}
	stopOnce sync.Once
}

// NewPrimary installs the shipping hook on db and returns the Primary.
// Close detaches it.
//
// Starting a primary bumps the directory's persisted replication epoch and
// checkpoints it: the bump is the durable fence point that makes this
// history distinguishable from (and newer than) everything shipped before —
// a primary restart, a follower promotion, and a deposed primary's comeback
// all produce strictly increasing epochs over the same data lineage.
func NewPrimary(db *core.Database, opts PrimaryOptions) *Primary {
	if opts.RingBytes <= 0 {
		opts.RingBytes = 4 << 20
	}
	if opts.SnapChunkBytes <= 0 {
		opts.SnapChunkBytes = 256 << 10
	}
	prev := db.ReplEpoch()
	epoch := opts.Epoch
	if epoch == 0 {
		epoch = prev + 1
	}
	db.SetReplEpoch(epoch)
	// Best-effort durability for the bump: if the checkpoint fails (or the
	// database is in-memory) the epoch still governs this process's
	// lifetime; a crash before the next successful checkpoint replays the
	// old epoch and the next start bumps from there.
	_ = db.Checkpoint()
	p := &Primary{
		db:        db,
		opts:      opts,
		epoch:     epoch,
		prevEpoch: prev,
		followers: make(map[uint64]*followerState),
	}
	// The ship-hook install returns the current LSN atomically: everything
	// at or below it is previous-epoch shared prefix (the seal), everything
	// after it ships under the new epoch.
	lsn := db.SetReplShip(p.ship)
	p.sealLSN = lsn
	p.mu.Lock()
	if lsn > p.shipped {
		p.shipped = lsn
	}
	p.mu.Unlock()
	db.SetReplInfo(p.info)
	db.SetReplQuorum(p.waitQuorum)
	return p
}

// Epoch returns the stream epoch (tests and diagnostics).
func (p *Primary) Epoch() uint64 { return p.epoch }

// ship is the hook core calls on every committed batch, on the committing
// goroutine under replMu. It encodes the batch (the record Data aliases
// pooled scratch, so encoding doubles as the copy), buffers it in the ring,
// and nudges the shippers. Nothing here blocks.
func (p *Primary) ship(b core.ReplBatch) {
	payload := wire.AppendReplBatch(nil, BatchToWire(b))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if b.LSN == 0 {
		// Event-only batch: nothing durable, nothing to resume — wait-free
		// push to whoever is attached and keeping up, drop for the rest.
		// Skipping not-yet-started followers keeps the welcome response
		// ahead of any push on their session queue.
		for _, f := range p.followers {
			if f.started {
				f.sess.TrySend(wire.OpReplFrames, payload)
			}
		}
		return
	}
	if b.LSN > p.shipped {
		p.shipped = b.LSN
	}
	p.ring = append(p.ring, ringEntry{lsn: b.LSN, payload: payload})
	p.ringBytes += len(payload)
	for p.ringBytes > p.opts.RingBytes && len(p.ring) > 1 {
		p.ringBytes -= len(p.ring[0].payload)
		p.ring = p.ring[1:]
	}
	for _, f := range p.followers {
		select {
		case f.notify <- struct{}{}:
		default:
		}
	}
}

// ErrDeposed is returned by AddFollower when the dialing follower presents
// a newer epoch than this primary's: proof that a promotion happened
// elsewhere. The primary fences itself before returning it.
var ErrDeposed = errors.New("repl: follower presented a newer epoch; this primary is deposed and now fenced")

// AddFollower registers a session at its requested resume position. It
// returns the primary's epoch, the current shipped LSN, and whether the
// follower must install base state before streaming (unshared history, a
// position ahead of this primary, or one trimmed past the ring's floor).
// The stream does not flow until StartShipper — the caller enqueues the
// OpReplWelcome response in between, so the handshake always precedes the
// first push on the session's queue.
//
// Resume rules, by the follower's (epoch, startLSN):
//   - epoch > ours: a newer primary exists. Fence self, reject (ErrDeposed).
//   - epoch == ours: same history; resume iff not ahead and the ring covers
//     (startLSN, shipped].
//   - epoch == our predecessor's and startLSN <= the seal: the previous
//     epoch's prefix up to the seal is byte-identical to ours, so the
//     follower may resume (ring coverage permitting) — this is how the
//     survivors of a promotion re-handshake without a base copy.
//   - anything else with history (startLSN > 0): LSNs from a lineage we
//     cannot verify we share — re-seed from base state.
//   - startLSN 0: no history to diverge; stream from scratch.
func (p *Primary) AddFollower(sess FollowerSession, startLSN, epoch uint64) (primaryEpoch, shippedLSN uint64, needBase bool, err error) {
	if epoch > p.epoch {
		p.FenceIfNewer(epoch)
		return 0, 0, false, ErrDeposed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, 0, false, errors.New("repl: primary closed")
	}
	if old := p.followers[sess.SessionID()]; old != nil {
		// A second hello on the same session replaces the first stream.
		old.stopOnce.Do(func() { close(old.stop) })
	}
	switch {
	case epoch == p.epoch:
		needBase = startLSN > p.shipped
	case p.prevEpoch != 0 && epoch == p.prevEpoch && startLSN <= p.sealLSN:
		// Shared prefix: the follower holds a prefix of the history we were
		// promoted (or restarted) from.
		needBase = false
	default:
		needBase = startLSN > 0
	}
	if !needBase && startLSN < p.shipped {
		// Batches (startLSN, shipped] must all still be in the ring;
		// anything older was trimmed (or predates this primary entirely).
		if len(p.ring) == 0 || startLSN+1 < p.ring[0].lsn {
			needBase = true
		}
	}
	f := &followerState{
		p:        p,
		sess:     sess,
		next:     startLSN + 1,
		needBase: needBase,
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	f.applied.Store(startLSN)
	p.followers[sess.SessionID()] = f
	return p.epoch, p.shipped, needBase, nil
}

// StartShipper launches the registered follower's shipper goroutine.
// No-op for an unknown (already removed) or already-started follower.
func (p *Primary) StartShipper(sessionID uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.followers[sessionID]
	if f == nil || f.started {
		return
	}
	f.started = true
	p.wg.Add(1)
	go f.run()
}

// Ack records a follower's applied LSN and completes any quorum waiters the
// ack satisfies. Acks arrive in order on the session's reader goroutine;
// applied LSNs are monotone per follower, so an ack at LSN n covers every
// waiter at or below n. An ack stamped with a newer epoch than ours is
// proof of a promotion elsewhere — the primary fences itself.
func (p *Primary) Ack(sessionID, appliedLSN, epoch uint64) {
	if epoch > p.epoch {
		p.FenceIfNewer(epoch)
		return
	}
	p.mu.Lock()
	f := p.followers[sessionID]
	if f != nil && appliedLSN > f.applied.Load() {
		f.applied.Store(appliedLSN)
	}
	done := p.completeWaitersLocked()
	p.mu.Unlock()
	for _, w := range done {
		w.ch <- nil
	}
}

// completeWaitersLocked removes and returns every waiter whose quorum is
// now satisfied. Caller holds p.mu and sends the completions after
// unlocking (the channels are buffered, but keeping sends out of the
// critical section keeps Ack cheap).
func (p *Primary) completeWaitersLocked() []*quorumWaiter {
	if len(p.waiters) == 0 {
		return nil
	}
	var done []*quorumWaiter
	kept := p.waiters[:0]
	for _, w := range p.waiters {
		if p.ackedByLocked(w.lsn) >= w.k {
			done = append(done, w)
		} else {
			kept = append(kept, w)
		}
	}
	p.waiters = kept
	return done
}

// ackedByLocked counts followers whose applied LSN has reached lsn.
func (p *Primary) ackedByLocked(lsn uint64) int {
	n := 0
	for _, f := range p.followers {
		if f.applied.Load() >= lsn {
			n++
		}
	}
	return n
}

// waitQuorum is the core quorum-commit hook (Options.SyncReplicas): it
// blocks the committing goroutine — after local durability, with no locks
// held — until k followers have acked lsn, the timeout fires
// (core.ErrQuorumTimeout: the commit degrades to async), or the primary is
// fenced (core.ErrFenced: the commit can never be acknowledged). The ack
// path runs on follower-session reader goroutines and shares nothing with
// the committer beyond p.mu, held only for list surgery — the no-deadlock
// argument in DESIGN.md §4i.
func (p *Primary) waitQuorum(lsn uint64, k int, timeout time.Duration) error {
	p.mu.Lock()
	switch {
	case p.fenced:
		p.mu.Unlock()
		return core.ErrFenced
	case p.closed:
		p.mu.Unlock()
		return core.ErrQuorumTimeout
	case p.ackedByLocked(lsn) >= k:
		p.mu.Unlock()
		return nil
	}
	w := &quorumWaiter{lsn: lsn, k: k, ch: make(chan error, 1)}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-timer.C:
	}
	// Timed out — but an ack may have completed us between the timer firing
	// and the removal below. Removal under p.mu decides the race: if the
	// waiter is already gone, its sender has (or will have) filled ch.
	p.mu.Lock()
	removed := false
	for i, x := range p.waiters {
		if x == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			removed = true
			break
		}
	}
	p.mu.Unlock()
	if !removed {
		return <-w.ch
	}
	return core.ErrQuorumTimeout
}

// FenceIfNewer fences this primary if epoch is strictly newer than its own:
// the database rejects all further data-bearing commits with ErrFenced and
// every in-flight quorum wait fails the same way. Returns whether the fence
// tripped (idempotently false once fenced). Safe from any goroutine.
func (p *Primary) FenceIfNewer(epoch uint64) bool {
	if epoch <= p.epoch {
		return false
	}
	p.mu.Lock()
	if p.fenced {
		p.mu.Unlock()
		return false
	}
	p.fenced = true
	waiters := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	// Fence the database first so no new commit can slip past while the
	// waiters drain: writeCommit checks the fence before touching the WAL.
	p.db.Fence()
	for _, w := range waiters {
		w.ch <- core.ErrFenced
	}
	return true
}

// Fenced reports whether a newer epoch has deposed this primary.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced
}

// RemoveFollower detaches a session's follower (called from session
// teardown). Idempotent.
func (p *Primary) RemoveFollower(sessionID uint64) {
	p.mu.Lock()
	f := p.followers[sessionID]
	delete(p.followers, sessionID)
	p.mu.Unlock()
	if f != nil {
		f.stopOnce.Do(func() { close(f.stop) })
	}
}

// Followers returns the number of attached followers.
func (p *Primary) Followers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.followers)
}

// info feeds the Replication stats group: attached follower count and the
// minimum applied LSN across them (0 when none are attached).
func (p *Primary) info() (peers int, lsn uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var min uint64
	first := true
	for _, f := range p.followers {
		a := f.applied.Load()
		if first || a < min {
			min = a
			first = false
		}
	}
	if first {
		min = 0
	}
	return len(p.followers), min
}

// Close detaches the hooks, stops every shipper, fails in-flight quorum
// waits as degraded (the commits are locally durable; there is simply no
// shipping service left to confirm them), and waits for the shippers.
func (p *Primary) Close() {
	p.db.SetReplShip(nil)
	p.db.SetReplInfo(nil)
	p.db.SetReplQuorum(nil)
	p.mu.Lock()
	p.closed = true
	for id, f := range p.followers {
		delete(p.followers, id)
		f.stopOnce.Do(func() { close(f.stop) })
	}
	waiters := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	for _, w := range waiters {
		w.ch <- core.ErrQuorumTimeout
	}
	p.wg.Wait()
}

// drop removes f's registration (shipper-initiated teardown: the session
// died under a Send, or base sync failed). Session teardown calls
// RemoveFollower too; both are idempotent.
func (f *followerState) drop() {
	f.p.RemoveFollower(f.sess.SessionID())
}

// run is the per-follower shipper: base-sync when needed, then drain the
// ring from f.next, blocking on the session's queue (its own pace) and on
// notify when caught up.
func (f *followerState) run() {
	p := f.p
	defer p.wg.Done()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if f.needBase {
			if !f.baseSync() {
				f.drop()
				return
			}
			f.needBase = false
		}
		p.mu.Lock()
		if len(p.ring) > 0 && f.next < p.ring[0].lsn {
			// Trimmed past our resume point while we slept: re-seed.
			f.needBase = true
			p.mu.Unlock()
			continue
		}
		if len(p.ring) == 0 && f.next <= p.shipped {
			// Batches committed before this primary attached its hook are
			// not in the ring; only base state can cover them.
			f.needBase = true
			p.mu.Unlock()
			continue
		}
		var pend []ringEntry
		for _, e := range p.ring {
			if e.lsn >= f.next {
				pend = append(pend, e)
			}
		}
		p.mu.Unlock()
		if len(pend) == 0 {
			select {
			case <-f.notify:
			case <-f.stop:
				return
			}
			continue
		}
		for _, e := range pend {
			if !f.sess.Send(wire.OpReplFrames, e.payload, f.stop) {
				f.drop()
				return
			}
			f.next = e.lsn + 1
		}
	}
}

// baseSync captures the primary's base state and streams it to the
// follower as chunked OpReplSnap pushes terminated by OpReplSnapEnd.
// Reports false when the session died mid-stream.
func (f *followerState) baseSync() bool {
	st, err := f.p.db.ReplBaseState()
	if err != nil {
		return false
	}
	var (
		chunk []wire.ReplSnapObj
		size  int
	)
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		payload := wire.AppendReplSnap(nil, chunk)
		chunk = chunk[:0]
		size = 0
		return f.sess.Send(wire.OpReplSnap, payload, f.stop)
	}
	for _, o := range st.Objects {
		chunk = append(chunk, wire.ReplSnapObj{ID: o.ID, Img: o.Img})
		size += len(o.Img) + 16
		if size >= f.p.opts.SnapChunkBytes {
			if !flush() {
				return false
			}
		}
	}
	if !flush() {
		return false
	}
	end := wire.AppendReplSnapEnd(nil, st.LSN, st.Meta)
	if !f.sess.Send(wire.OpReplSnapEnd, end, f.stop) {
		return false
	}
	f.next = st.LSN + 1
	return true
}
