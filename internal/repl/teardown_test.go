package repl_test

// Follower-lifecycle teardown coverage: a follower killed mid-stream, a
// primary closing with followers attached, and a wedged follower must all
// tear down without goroutine leaks — and the wedged case must never stall
// the primary's commit path (the PR's no-stall guarantee).

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/value"
	"sentinel/internal/wire"
)

// stableGoroutines samples runtime.NumGoroutine until it drops to want or
// the deadline passes, letting teardown goroutines finish first.
func stableGoroutines(deadline time.Duration, want int) int {
	end := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for time.Now().Before(end) {
		if n <= want {
			return n
		}
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestFollowerKilledMidStream: the follower dies (abrupt close) while the
// primary is streaming; the primary sheds its shipper goroutine and keeps
// committing.
func TestFollowerKilledMidStream(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	fn := startFollower(t, t.TempDir(), p.srv.Addr())
	waitApplied(t, fn.f.DB, p.db.ReplLSN())

	// Kill the follower while commits are in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := p.db.Exec(fmt.Sprintf("A!SetVal(%d)", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	fn.close()
	<-done

	// Primary: zero followers, shipper gone, goroutines back to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for p.pri.Followers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("primary still reports %d followers", p.pri.Followers())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := stableGoroutines(5*time.Second, baseline); got > baseline {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
	if err := p.db.Exec("A!SetVal(999)"); err != nil {
		t.Fatalf("primary stopped committing after follower death: %v", err)
	}
}

// TestPrimaryClosesWithFollowersAttached: closing the primary's server and
// shipper with live followers must not deadlock or leak; the followers
// fall back to redialing.
func TestPrimaryClosesWithFollowersAttached(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := startPrimary(t, t.TempDir())
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	var fns []*followerNode
	for i := 0; i < 3; i++ {
		fn := startFollower(t, t.TempDir(), p.srv.Addr())
		fns = append(fns, fn)
	}
	for _, fn := range fns {
		waitApplied(t, fn.f.DB, p.db.ReplLSN())
	}

	// Primary goes away first; followers are mid-session.
	p.close()
	for _, fn := range fns {
		fn.close()
	}
	if got := stableGoroutines(5*time.Second, baseline); got > baseline {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, got)
	}
}

// TestWedgedFollowerNeverStallsCommits: a "follower" that handshakes and
// then stops reading wedges its own session queue. The primary's commit
// path must stay wait-free regardless — the wedged stream blocks only its
// shipper goroutine.
func TestWedgedFollowerNeverStallsCommits(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}

	// A raw wire client that sends ReplHello and then never reads again:
	// the server's out-queue for this session fills and stays full.
	conn, err := net.Dial("tcp", p.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := wire.AppendValues(nil, value.Int(0), value.Int(0))
	if _, err := wire.WriteFrame(conn, nil, wire.Frame{Op: wire.OpReplHello, ReqID: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	// Wait until the primary has registered the follower.
	deadline := time.Now().Add(5 * time.Second)
	for p.pri.Followers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedged follower never attached")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Commits must proceed at full speed with the wedged stream attached.
	start := time.Now()
	for i := 0; i < 200; i++ {
		if err := p.db.Exec(fmt.Sprintf("A!SetVal(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("commit path stalled behind wedged follower: 200 commits took %v", elapsed)
	}

	// A healthy follower attached at the same time still converges.
	fn := startFollower(t, t.TempDir(), p.srv.Addr())
	defer fn.close()
	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	expectVal(t, fn.f.DB, "A", "val", "199")
}

// TestFollowerCloseInterruptsRetry: closing a follower that is stuck
// redialing an unreachable primary returns promptly.
func TestFollowerCloseInterruptsRetry(t *testing.T) {
	// A listener that accepts nothing useful, then goes away.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	fn := startFollower(t, t.TempDir(), addr)
	start := time.Now()
	fn.close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("follower close took %v while redialing", elapsed)
	}
}

// TestClientContextCancellation: the context-aware client API abandons a
// call whose context is cancelled without leaking its pending entry (the
// futures map honors cancellation).
func TestClientContextCancellation(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(context.Background(), p.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Lookup(ctx, "A"); err == nil {
		t.Fatal("cancelled lookup succeeded")
	}
	// The connection survives the abandoned call.
	if _, ok, err := c.Lookup(context.Background(), "A"); err != nil || !ok {
		t.Fatalf("lookup after cancellation: %v ok=%v", err, ok)
	}
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}
