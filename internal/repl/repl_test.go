package repl_test

// End-to-end replication over real TCP: a primary ships committed batches,
// a follower replays them and serves identical reads, subscriptions fan
// out on the follower, and every resync path (fresh stream, base sync,
// resume after restart, primary restart with a new epoch) converges.

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"sentinel/internal/client"
	"sentinel/internal/core"
	"sentinel/internal/repl"
	"sentinel/internal/server"
	"sentinel/internal/wire"
)

const replSchema = `class Item reactive persistent {
	attr val int
	event end method SetVal(v int) { self.val := v }
}
bind A new Item(val: 1)
bind B new Item(val: 2)`

// primaryNode is a primary database + shipper + server over a real socket.
type primaryNode struct {
	db  *core.Database
	pri *repl.Primary
	srv *server.Server
}

func (n *primaryNode) close() {
	n.srv.Close()
	n.pri.Close()
	n.db.Close()
}

func startPrimary(t *testing.T, dir string) *primaryNode {
	t.Helper()
	db, err := core.Open(core.Options{Dir: dir, Output: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	pri := repl.NewPrimary(db, repl.PrimaryOptions{})
	srv, err := server.New(db, server.Options{Addr: "127.0.0.1:0", Primary: pri})
	if err != nil {
		pri.Close()
		db.Close()
		t.Fatal(err)
	}
	return &primaryNode{db: db, pri: pri, srv: srv}
}

// followerNode is a replica runtime + its own read/subscription server.
type followerNode struct {
	f   *repl.Follower
	srv *server.Server
}

func (n *followerNode) close() {
	n.srv.Close()
	n.f.Close()
}

func startFollower(t *testing.T, dir, primaryAddr string) *followerNode {
	t.Helper()
	f, err := repl.StartFollower(repl.FollowerOptions{
		PrimaryAddr: primaryAddr,
		Core:        core.Options{Dir: dir, Output: io.Discard},
		MaxBackoff:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(f.DB, server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	return &followerNode{f: f, srv: srv}
}

// waitApplied blocks until the replica's applied LSN reaches target.
func waitApplied(t *testing.T, db *core.Database, target uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.ReplLSN() < target {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, want %d", db.ReplLSN(), target)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// readVal reads name.attr through a snapshot on db.
func readVal(t *testing.T, db *core.Database, name, attr string) (string, bool) {
	t.Helper()
	id, ok := db.Lookup(name)
	if !ok {
		return "", false
	}
	snap := db.BeginSnapshot()
	defer db.Abort(snap)
	v, err := db.Get(snap, id, attr)
	if err != nil {
		t.Fatalf("get %s.%s: %v", name, attr, err)
	}
	return v.String(), true
}

// expectVal asserts name.attr reads the same on both databases and equals
// want on the replica.
func expectVal(t *testing.T, replica *core.Database, name, attr, want string) {
	t.Helper()
	got, ok := replica.Lookup(name)
	if !ok {
		t.Fatalf("replica: %q not bound", name)
	}
	_ = got
	v, _ := readVal(t, replica, name, attr)
	if v != want {
		t.Fatalf("replica %s.%s = %s, want %s", name, attr, v, want)
	}
}

// TestFollowerStreamsFromScratch: follower attaches to an empty-history
// primary before any writes; every committed batch streams over and reads
// on the replica match the primary.
func TestFollowerStreamsFromScratch(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	fn := startFollower(t, t.TempDir(), p.srv.Addr())
	defer fn.close()

	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := p.db.Exec(fmt.Sprintf("A!SetVal(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	expectVal(t, fn.f.DB, "A", "val", "19")
	expectVal(t, fn.f.DB, "B", "val", "2")

	if role := fn.f.DB.Stats().Replication.Role; role != "replica" {
		t.Fatalf("follower role = %q, want replica", role)
	}
	if s := p.db.Stats().Replication; s.Role != "primary" || s.Peers != 1 {
		t.Fatalf("primary stats = %+v, want role=primary peers=1", s)
	}
}

// TestFollowerBaseSync: the primary has history that predates the shipper
// (never entered the ring), so the follower must install base state.
func TestFollowerBaseSync(t *testing.T) {
	dir := t.TempDir()
	// Seed history without any shipper attached.
	db, err := core.Open(core.Options{Dir: dir, Output: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("A!SetVal(42)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	p := startPrimary(t, dir)
	defer p.close()
	fn := startFollower(t, t.TempDir(), p.srv.Addr())
	defer fn.close()

	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	expectVal(t, fn.f.DB, "A", "val", "42")

	// The stream keeps flowing after the install.
	if err := p.db.Exec("B!SetVal(7)"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	expectVal(t, fn.f.DB, "B", "val", "7")
}

// TestFollowerResume: a follower that restarts resumes from its applied
// LSN (same epoch) and catches up on what it missed.
func TestFollowerResume(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	fdir := t.TempDir()
	fn := startFollower(t, fdir, p.srv.Addr())

	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	if err := p.db.Exec("A!SetVal(1)"); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	fn.close()

	// Commits land while the follower is down.
	for i := 2; i <= 5; i++ {
		if err := p.db.Exec(fmt.Sprintf("A!SetVal(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	fn = startFollower(t, fdir, p.srv.Addr())
	defer fn.close()
	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	expectVal(t, fn.f.DB, "A", "val", "5")
}

// TestPrimaryRestartEpochMismatch: the primary restarts (fresh epoch), so
// the follower's position — although numerically plausible — is re-seeded
// from base state, and converges.
func TestPrimaryRestartEpochMismatch(t *testing.T) {
	pdir := t.TempDir()
	p := startPrimary(t, pdir)
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	fn := startFollower(t, fdir, p.srv.Addr())
	waitApplied(t, fn.f.DB, p.db.ReplLSN())
	fn.close()
	addr := p.srv.Addr()
	p.close()

	// Restart the primary on the same directory and address: new epoch.
	p2, err := core.Open(core.Options{Dir: pdir, Output: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	pri := repl.NewPrimary(p2, repl.PrimaryOptions{})
	srv, err := server.New(p2, server.Options{Addr: addr, Primary: pri})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		pri.Close()
		p2.Close()
	}()
	if err := p2.Exec("B!SetVal(99)"); err != nil {
		t.Fatal(err)
	}

	fn = startFollower(t, fdir, addr)
	defer fn.close()
	waitApplied(t, fn.f.DB, p2.ReplLSN())
	expectVal(t, fn.f.DB, "A", "val", "1")
	expectVal(t, fn.f.DB, "B", "val", "99")
}

// TestReplicaRejectsWrites: application writes on a replica fail with
// ErrReplicaWrite; reads keep working.
func TestReplicaRejectsWrites(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	fn := startFollower(t, t.TempDir(), p.srv.Addr())
	defer fn.close()
	waitApplied(t, fn.f.DB, p.db.ReplLSN())

	if err := fn.f.DB.Exec("A!SetVal(123)"); err == nil {
		t.Fatal("replica accepted a write")
	}
	if err := fn.f.DB.Exec("bind C new Item(val: 3)"); err == nil {
		t.Fatal("replica accepted an object creation")
	}
	expectVal(t, fn.f.DB, "A", "val", "1")
}

// TestFollowerFanOut: a subscriber on the FOLLOWER's server receives
// pushes for commits that happened on the PRIMARY — the shipped batch
// carries the occurrences and the replica fans them out locally.
func TestFollowerFanOut(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	fn := startFollower(t, t.TempDir(), p.srv.Addr())
	defer fn.close()
	waitApplied(t, fn.f.DB, p.db.ReplLSN())

	c, err := client.Dial(context.Background(), fn.srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, ok, err := c.Lookup(context.Background(), "A")
	if err != nil || !ok {
		t.Fatalf("lookup on follower: %v ok=%v", err, ok)
	}
	got := make(chan wire.Event, 8)
	if _, err := c.Subscribe(context.Background(), id, "SetVal", wire.MomentAny, func(ev wire.Event) { got <- ev }); err != nil {
		t.Fatal(err)
	}

	if err := p.db.Exec("A!SetVal(77)"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev.Method != "SetVal" || ev.Source != id {
			t.Fatalf("unexpected push %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no push delivered through the follower")
	}
}

// TestMultipleFollowers: three followers all converge, and the primary's
// lag accounting drains to zero.
func TestMultipleFollowers(t *testing.T) {
	p := startPrimary(t, t.TempDir())
	defer p.close()
	if err := p.db.Exec(replSchema); err != nil {
		t.Fatal(err)
	}
	var fns []*followerNode
	for i := 0; i < 3; i++ {
		fn := startFollower(t, t.TempDir(), p.srv.Addr())
		defer fn.close()
		fns = append(fns, fn)
	}
	for i := 0; i < 10; i++ {
		if err := p.db.Exec(fmt.Sprintf("A!SetVal(%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	target := p.db.ReplLSN()
	for _, fn := range fns {
		waitApplied(t, fn.f.DB, target)
		expectVal(t, fn.f.DB, "A", "val", "9")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := p.db.Stats().Replication
		if s.Peers == 3 && s.LagBatches == 0 && s.AppliedLSN == target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag never drained: %+v (want peers=3 applied=%d)", s, target)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
