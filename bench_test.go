package sentinel_test

// The benchmark harness: one testing.B benchmark per experiment in
// EXPERIMENTS.md. The same measurements, with parameter sweeps and
// formatted tables, are produced by `go run ./cmd/sentinel-bench`.

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"sentinel"
	"sentinel/internal/baseline/adam"
	"sentinel/internal/baseline/ode"
	"sentinel/internal/bench"
	"sentinel/internal/core"
	"sentinel/internal/event"
	"sentinel/internal/rule"
)

func quietDB(b *testing.B) *core.Database {
	b.Helper()
	return core.MustOpen(core.Options{Output: io.Discard})
}

func noCond(rule.ExecContext, event.Detection) (bool, error) { return false, nil }

func marketDB(b *testing.B, stocks int) (*core.Database, *bench.Market) {
	b.Helper()
	db := quietDB(b)
	if err := bench.InstallMarketSchema(db); err != nil {
		b.Fatal(err)
	}
	m, err := bench.BuildMarket(db, stocks, 0)
	if err != nil {
		b.Fatal(err)
	}
	return db, m
}

// BenchmarkP1SubscriptionVsCentralized: event dispatch cost with N rules in
// the system, Sentinel subscriptions vs the ADAM-style centralized matcher.
// The paper's §3.5 claim is that Sentinel stays flat in N.
func BenchmarkP1SubscriptionVsCentralized(b *testing.B) {
	const stocks = 100
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("sentinel/rules=%d", n), func(b *testing.B) {
			db, m := marketDB(b, stocks)
			err := db.Atomically(func(t *core.Tx) error {
				for i := 0; i < n; i++ {
					r, err := db.CreateRule(t, core.RuleSpec{
						Name:      fmt.Sprintf("w%d", i),
						EventSrc:  "end Stock::SetPrice(float p)",
						Condition: noCond,
					})
					if err != nil {
						return err
					}
					if err := db.Subscribe(t, m.Stocks[i%stocks], r.ID()); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			defer db.Abort(tx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Send(tx, m.Stocks[0], "SetPrice", sentinel.Float(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("adam/rules=%d", n), func(b *testing.B) {
			db, m := marketDB(b, stocks)
			sys := adam.New(db)
			if err := db.Atomically(func(t *core.Tx) error { return sys.EnrollClass(t, "Stock") }); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := sys.NewRule(&adam.Rule{
					Name: fmt.Sprintf("w%d", i), ActiveClass: "Stock",
					ActiveMethod: "SetPrice", When: event.End, Enabled: true,
					Cond: func(rule.ExecContext, event.Occurrence) (bool, error) { return false, nil },
				}); err != nil {
					b.Fatal(err)
				}
			}
			tx := db.Begin()
			defer db.Abort(tx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Send(tx, m.Stocks[0], "SetPrice", sentinel.Float(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP2PassiveReactive: method-send cost across the reactivity
// ladder (§3.2's "no overhead for passive objects").
func BenchmarkP2PassiveReactive(b *testing.B) {
	type cfg struct {
		name        string
		reactive    bool
		declared    bool
		subscribers int
	}
	for _, c := range []cfg{
		{"passive", false, false, 0},
		{"reactive-undeclared", true, false, 0},
		{"reactive-declared-0subs", true, true, 0},
		{"reactive-declared-1sub", true, true, 1},
		{"reactive-declared-10subs", true, true, 10},
	} {
		b.Run(c.name, func(b *testing.B) {
			db := quietDB(b)
			cls := sentinel.NewClass("P")
			if c.reactive {
				cls.Classification = sentinel.ReactiveClass
			}
			cls.Attr("x", sentinel.TypeFloat)
			gen := sentinel.GenNone
			if c.declared {
				gen = sentinel.GenEnd
			}
			cls.AddMethod(&sentinel.Method{
				Name: "Set", Params: []sentinel.Param{{Name: "v", Type: sentinel.TypeFloat}},
				Visibility: sentinel.Public, EventGen: gen,
				Body: func(ctx sentinel.CallContext) (sentinel.Value, error) {
					return sentinel.NilValue, ctx.Set("x", ctx.Arg(0))
				},
			})
			db.MustRegisterClass(cls)
			var id sentinel.OID
			err := db.Atomically(func(t *core.Tx) error {
				var err error
				id, err = db.NewObject(t, "P", nil)
				if err != nil {
					return err
				}
				for i := 0; i < c.subscribers; i++ {
					r, err := db.CreateRule(t, core.RuleSpec{
						Name: fmt.Sprintf("s%d", i), EventSrc: "end P::Set(float v)",
						Condition: noCond,
					})
					if err != nil {
						return err
					}
					if err := db.Subscribe(t, id, r.ID()); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			defer db.Abort(tx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Send(tx, id, "Set", sentinel.Float(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP3OperatorTrees: raw detector feeding cost per operator kind.
func BenchmarkP3OperatorTrees(b *testing.B) {
	prim := func(m string) *event.Expr { return event.Primitive(event.End, "C", m) }
	exprs := map[string]*event.Expr{
		"primitive": prim("m0"),
		"or":        event.Or(prim("m0"), prim("m1")),
		"and":       event.And(prim("m0"), prim("m1")),
		"seq":       event.Seq(prim("m0"), prim("m1")),
		"not":       event.Not(prim("m0"), prim("m1"), prim("m2")),
		"any2of4":   event.Any(2, prim("m0"), prim("m1"), prim("m2"), prim("m3")),
	}
	deep := prim("m0")
	for i := 1; i < 8; i++ {
		deep = event.And(deep, prim(fmt.Sprintf("m%d", i%4)))
	}
	exprs["and-depth8"] = deep

	for _, name := range []string{"primitive", "or", "and", "seq", "not", "any2of4", "and-depth8"} {
		b.Run(name, func(b *testing.B) {
			d := event.MustDetector(exprs[name], nil, event.ContextPaper)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Feed(event.Occurrence{Class: "C", Method: fmt.Sprintf("m%d", i%4), When: event.End, Seq: uint64(i + 1)})
			}
		})
	}
}

// BenchmarkP4RuleAddRemove: runtime rule maintenance cost — Sentinel and
// ADAM add an object; the Ode shape must rebuild the class over all N
// instances.
func BenchmarkP4RuleAddRemove(b *testing.B) {
	b.Run("sentinel", func(b *testing.B) {
		db, _ := marketDB(b, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("r%d", i)
			if err := db.Atomically(func(t *core.Tx) error {
				_, err := db.CreateRule(t, core.RuleSpec{Name: name, EventSrc: "end Stock::SetPrice(float p)", Condition: noCond})
				return err
			}); err != nil {
				b.Fatal(err)
			}
			if err := db.Atomically(func(t *core.Tx) error { return db.DeleteRule(t, name) }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adam", func(b *testing.B) {
		db, _ := marketDB(b, 100)
		sys := adam.New(db)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("r%d", i)
			if err := sys.NewRule(&adam.Rule{Name: name, ActiveClass: "Stock", ActiveMethod: "SetPrice", When: event.End, Enabled: true}); err != nil {
				b.Fatal(err)
			}
			if err := sys.DeleteRule(name); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ode-rebuild-100-instances", func(b *testing.B) {
		db, _ := marketDB(b, 100)
		sys := ode.New(db)
		section := func(i int) ode.ClassRules {
			return ode.ClassRules{
				Class: "Stock",
				Constraints: []ode.Constraint{{
					Name: fmt.Sprintf("c%d", i), Severity: ode.Soft,
					Pred: func(rule.ExecContext, sentinel.OID) (bool, error) { return true, nil },
				}},
			}
		}
		if err := db.Atomically(func(t *core.Tx) error { return sys.EnrollClass(t, section(0)) }); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Atomically(func(t *core.Tx) error { return sys.RebuildClass(t, section(i+1)) }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP5ClassVsInstance: dispatch cost for one rule covering 1000
// instances, associated class-level vs via 1000 subscriptions.
func BenchmarkP5ClassVsInstance(b *testing.B) {
	const n = 1000
	b.Run("class-level", func(b *testing.B) {
		db, m := marketDB(b, n)
		if err := db.Atomically(func(t *core.Tx) error {
			_, err := db.CreateRule(t, core.RuleSpec{
				Name: "r", EventSrc: "end Stock::SetPrice(float p)",
				Condition: noCond, ClassLevel: "Stock",
			})
			return err
		}); err != nil {
			b.Fatal(err)
		}
		tx := db.Begin()
		defer db.Abort(tx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Send(tx, m.Stocks[i%n], "SetPrice", sentinel.Float(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instance-level", func(b *testing.B) {
		db, m := marketDB(b, n)
		if err := db.Atomically(func(t *core.Tx) error {
			r, err := db.CreateRule(t, core.RuleSpec{
				Name: "r", EventSrc: "end Stock::SetPrice(float p)", Condition: noCond,
			})
			if err != nil {
				return err
			}
			for _, s := range m.Stocks {
				if err := db.Subscribe(t, s, r.ID()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		tx := db.Begin()
		defer db.Abort(tx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Send(tx, m.Stocks[i%n], "SetPrice", sentinel.Float(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkP6CouplingModes: full transaction cost with one rule in each
// coupling mode (10 sends per transaction).
func BenchmarkP6CouplingModes(b *testing.B) {
	for _, mode := range []string{"immediate", "deferred", "detached"} {
		b.Run(mode, func(b *testing.B) {
			db, m := marketDB(b, 1)
			if err := db.Atomically(func(t *core.Tx) error {
				r, err := db.CreateRule(t, core.RuleSpec{
					Name: "r", EventSrc: "end Stock::SetPrice(float p)",
					Action:   func(rule.ExecContext, event.Detection) error { return nil },
					Coupling: mode,
				})
				if err != nil {
					return err
				}
				return db.Subscribe(t, m.Stocks[0], r.ID())
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin()
				for j := 0; j < 10; j++ {
					if _, err := db.Send(tx, m.Stocks[0], "SetPrice", sentinel.Float(1)); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.Commit(tx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP7Persistence: committed-write throughput against the WAL+heap
// (no fsync, measuring the logging path), and full recovery.
func BenchmarkP7Persistence(b *testing.B) {
	b.Run("commit-with-wal", func(b *testing.B) {
		dir := b.TempDir()
		db, err := core.Open(core.Options{Dir: dir, SyncOnCommit: false, Output: io.Discard,
			Schema: func(db *core.Database) error { return bench.InstallMarketSchema(db) }})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		m, err := bench.BuildMarket(db, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Atomically(func(t *core.Tx) error {
				_, err := db.Send(t, m.Stocks[0], "SetPrice", sentinel.Float(float64(i)))
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recovery-1000-objects", func(b *testing.B) {
		dir := b.TempDir()
		schemaOpt := func(db *core.Database) error { return bench.InstallMarketSchema(db) }
		db, err := core.Open(core.Options{Dir: dir, Output: io.Discard, Schema: schemaOpt})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bench.BuildMarket(db, 1000, 0); err != nil {
			b.Fatal(err)
		}
		if err := db.CloseAbrupt(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db, err := core.Open(core.Options{Dir: dir, Output: io.Discard, Schema: schemaOpt})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := db.CloseAbrupt(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

// BenchmarkP8InterfaceSelectivity: cost per send with k of 10 methods
// declared as event generators.
func BenchmarkP8InterfaceSelectivity(b *testing.B) {
	for _, k := range []int{0, 5, 10} {
		b.Run(fmt.Sprintf("declared=%d", k), func(b *testing.B) {
			db := quietDB(b)
			cls := sentinel.NewClass("S")
			cls.Classification = sentinel.ReactiveClass
			cls.Attr("x", sentinel.TypeFloat)
			for mi := 0; mi < 10; mi++ {
				gen := sentinel.GenNone
				if mi < k {
					gen = sentinel.GenEnd
				}
				cls.AddMethod(&sentinel.Method{
					Name: fmt.Sprintf("M%d", mi), Params: []sentinel.Param{{Name: "v", Type: sentinel.TypeFloat}},
					Visibility: sentinel.Public, EventGen: gen,
					Body: func(ctx sentinel.CallContext) (sentinel.Value, error) {
						return sentinel.NilValue, ctx.Set("x", ctx.Arg(0))
					},
				})
			}
			db.MustRegisterClass(cls)
			var id sentinel.OID
			if err := db.Atomically(func(t *core.Tx) error {
				var err error
				id, err = db.NewObject(t, "S", nil)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			tx := db.Begin()
			defer db.Abort(tx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Send(tx, id, fmt.Sprintf("M%d", i%10), sentinel.Float(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP11ParallelSend: concurrent transactions raising events, scaling
// with GOMAXPROCS. The consumer-resolution cache and the reader/writer
// catalog lock mean propagation takes no exclusive database-wide lock, so
// disjoint-object throughput should rise near-linearly with parallelism;
// the shared variant adds strict-2PL object-lock contention on top and
// bounds the benefit.
func BenchmarkP11ParallelSend(b *testing.B) {
	setup := func(b *testing.B, stocks int) (*core.Database, *bench.Market) {
		db, m := marketDB(b, stocks)
		if err := db.Atomically(func(t *core.Tx) error {
			_, err := db.CreateRule(t, core.RuleSpec{
				Name: "watch", EventSrc: "end Stock::SetPrice(float p)",
				Condition: noCond, ClassLevel: "Stock",
			})
			return err
		}); err != nil {
			b.Fatal(err)
		}
		return db, m
	}
	b.Run("disjoint", func(b *testing.B) {
		// Each goroutine owns one stock: no object-lock contention, pure
		// propagation-path parallelism.
		const stocks = 512
		db, m := setup(b, stocks)
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := m.Stocks[int(next.Add(1)-1)%stocks]
			for pb.Next() {
				if err := db.Atomically(func(t *core.Tx) error {
					_, err := db.Send(t, id, "SetPrice", sentinel.Float(1))
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("shared", func(b *testing.B) {
		// All goroutines draw from the same 8 stocks: transactions collide
		// on object locks and the cache entries are shared across CPUs.
		const stocks = 8
		db, m := setup(b, stocks)
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				id := m.Stocks[int(next.Add(1)-1)%stocks]
				if err := db.Atomically(func(t *core.Tx) error {
					_, err := db.Send(t, id, "SetPrice", sentinel.Float(1))
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkSalaryCheck (E1): the §5.1 rule enforced per update, in all
// three systems.
func BenchmarkSalaryCheck(b *testing.B) {
	run := func(b *testing.B, install func(db *core.Database, org *bench.Org) error) {
		db := quietDB(b)
		if err := bench.InstallOrgSchema(db); err != nil {
			b.Fatal(err)
		}
		org, err := bench.BuildOrg(db, 2, 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := install(db, org); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := org.Employees[i%len(org.Employees)]
			if err := db.Atomically(func(t *core.Tx) error {
				_, err := db.Send(t, e, "SetSalary", sentinel.Float(1500))
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sentinel", func(b *testing.B) {
		run(b, func(db *core.Database, org *bench.Org) error { return bench.SalaryCheckSentinel(db) })
	})
	b.Run("ode", func(b *testing.B) {
		run(b, func(db *core.Database, org *bench.Org) error {
			_, err := bench.SalaryCheckOde(db, ode.New(db))
			return err
		})
	})
	b.Run("adam", func(b *testing.B) {
		run(b, func(db *core.Database, org *bench.Org) error {
			_, err := bench.SalaryCheckAdam(db, adam.New(db))
			return err
		})
	})
}

// BenchmarkDSLInterpretedMethod: cost of an interpreted (SentinelQL) method
// body vs the equivalent Go body — the price of runtime-defined classes.
func BenchmarkDSLInterpretedMethod(b *testing.B) {
	b.Run("interpreted", func(b *testing.B) {
		db := quietDB(b)
		if err := db.Exec(`
			class Counter reactive persistent {
				attr n int
				method Inc() { self.n := self.n + 1 }
			}
			bind C new Counter()
		`); err != nil {
			b.Fatal(err)
		}
		id, _ := db.Lookup("C")
		tx := db.Begin()
		defer db.Abort(tx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Send(tx, id, "Inc"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		db := quietDB(b)
		cls := sentinel.NewClass("Counter")
		cls.Attr("n", sentinel.TypeInt)
		cls.AddMethod(&sentinel.Method{
			Name: "Inc", Visibility: sentinel.Public,
			Body: func(ctx sentinel.CallContext) (sentinel.Value, error) {
				v, err := ctx.Get("n")
				if err != nil {
					return sentinel.NilValue, err
				}
				n, _ := v.AsInt()
				return sentinel.NilValue, ctx.Set("n", sentinel.Int(n+1))
			},
		})
		db.MustRegisterClass(cls)
		var id sentinel.OID
		if err := db.Atomically(func(t *core.Tx) error {
			var err error
			id, err = db.NewObject(t, "Counter", nil)
			return err
		}); err != nil {
			b.Fatal(err)
		}
		tx := db.Begin()
		defer db.Abort(tx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Send(tx, id, "Inc"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexLookupVsScan: equality lookup over N objects with and
// without a secondary index.
func BenchmarkIndexLookupVsScan(b *testing.B) {
	build := func(b *testing.B, withIndex bool) *core.Database {
		db := quietDB(b)
		if err := bench.InstallOrgSchema(db); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.BuildOrg(db, 0, 5000); err != nil {
			b.Fatal(err)
		}
		if withIndex {
			if err := db.Atomically(func(t *core.Tx) error {
				_, err := db.CreateIndex(t, "Employee", "name")
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	for _, withIndex := range []bool{false, true} {
		name := "scan-5000"
		if withIndex {
			name = "indexed-5000"
		}
		b.Run(name, func(b *testing.B) {
			db := build(b, withIndex)
			tx := db.Begin()
			defer db.Abort(tx)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids, _, err := db.LookupByAttr(tx, "Employee", "name", sentinel.Str("emp-2500"))
				if err != nil || len(ids) != 1 {
					b.Fatalf("lookup: %v %v", ids, err)
				}
			}
		})
	}
}
