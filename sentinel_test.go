package sentinel_test

import (
	"fmt"
	"io"
	"testing"

	"sentinel"
)

// TestFacadeEndToEnd exercises the public API surface: open, define a
// schema in SentinelQL, build an event programmatically, attach a Go rule,
// drive it, inspect stats.
func TestFacadeEndToEnd(t *testing.T) {
	db := sentinel.MustOpen(sentinel.Options{Output: io.Discard})
	defer db.Close()

	if err := db.Exec(`
		class Sensor reactive persistent {
			attr name string
			attr reading float
			event end method Report(v float) { self.reading := v }
		}
		bind S1 new Sensor(name: "s1")
	`); err != nil {
		t.Fatal(err)
	}
	s1, ok := db.Lookup("S1")
	if !ok {
		t.Fatal("binding missing")
	}

	// Programmatic event construction mirrors the paper's
	// `new Primitive(...)` / `new Sequence(...)` API (§4.6).
	ev := sentinel.SeqEvent(
		sentinel.Primitive(sentinel.End, "Sensor", "Report"),
		sentinel.Primitive(sentinel.End, "Sensor", "Report"),
	)
	var pairs int
	err := db.Atomically(func(tx *sentinel.Tx) error {
		r, err := db.CreateRule(tx, sentinel.RuleSpec{
			Name:  "pairwise",
			Event: ev,
			Condition: func(ctx sentinel.ExecContext, det sentinel.Detection) (bool, error) {
				return det.First().Args[0].MustFloat() < det.Last().Args[0].MustFloat(), nil
			},
			Action: func(ctx sentinel.ExecContext, det sentinel.Detection) error {
				pairs++
				return nil
			},
		})
		if err != nil {
			return err
		}
		return db.Subscribe(tx, s1, r.ID())
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range []float64{1, 2, 5, 3} {
		if err := db.Exec(fmt.Sprintf(`S1!Report(%v)`, v)); err != nil {
			t.Fatal(err)
		}
	}
	// Every Report is both a potential initiator and terminator; under the
	// paper context the Seq pairs consecutive readings: (1,2) rising →
	// fire, (2,5) rising → fire, (5,3) falling → condition false.
	if pairs != 2 {
		t.Fatalf("pairs = %d, want 2", pairs)
	}

	st := db.Stats()
	if st.Events.Sends == 0 || st.Events.Raised == 0 || st.Rules.Defined != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if sentinel.IsAbort(fmt.Errorf("nope")) {
		t.Fatal("IsAbort misfires")
	}
}

// ExampleDatabase_Exec demonstrates the SentinelQL surface: a reactive
// class, a guard rule, and the abort path.
func ExampleDatabase_Exec() {
	db := sentinel.MustOpen(sentinel.Options{})
	defer db.Close()

	_ = db.Exec(`
		class Account reactive persistent {
			attr balance float
			event begin method Withdraw(amount float) {
				self.balance := self.balance - amount
			}
		}
		rule NoOverdraft for Account on begin Account::Withdraw(float amount)
			if amount > self.balance then abort "insufficient funds"
		bind Acct new Account(balance: 100.0)
	`)
	if err := db.Exec(`Acct!Withdraw(250.0)`); sentinel.IsAbort(err) {
		fmt.Println("withdrawal blocked")
	}
	v, _ := db.Eval(`Acct.balance`)
	fmt.Println("balance:", v)
	// Output:
	// withdrawal blocked
	// balance: 100
}

// ExampleDatabase_CreateRule shows a rule built from Go with an event
// spanning two objects of different classes.
func ExampleDatabase_CreateRule() {
	db := sentinel.MustOpen(sentinel.Options{})
	defer db.Close()

	_ = db.Exec(`
		class Stock reactive { attr price float
			event end method SetPrice(p float) { self.price := p } }
		class Index reactive { attr v float
			event end method SetValue(x float) { self.v := x } }
		bind IBM new Stock()
		bind Dow new Index()
	`)
	ibm, _ := db.Lookup("IBM")
	dow, _ := db.Lookup("Dow")

	_ = db.Atomically(func(tx *sentinel.Tx) error {
		r, _ := db.CreateRule(tx, sentinel.RuleSpec{
			Name: "both",
			Event: sentinel.AndEvent(
				sentinel.Primitive(sentinel.End, "Stock", "SetPrice"),
				sentinel.Primitive(sentinel.End, "Index", "SetValue"),
			),
			Action: func(ctx sentinel.ExecContext, det sentinel.Detection) error {
				fmt.Println("conjunction detected across", len(det.Constituents), "objects")
				return nil
			},
		})
		_ = db.Subscribe(tx, ibm, r.ID())
		return db.Subscribe(tx, dow, r.ID())
	})

	_ = db.Exec(`IBM!SetPrice(75.0)`)
	_ = db.Exec(`Dow!SetValue(10100.0)`)
	// Output:
	// conjunction detected across 2 objects
}
